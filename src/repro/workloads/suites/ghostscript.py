"""ghostscript stand-in.

PostScript rendering: graphics-state structures accessed through
constant offsets across the interpreter's branchy state machine
(reassociation-rich at 7.9%), plus curve evaluation and span fills.
Fingerprint target: 4.6% moves / 7.9% reassoc / 1.9% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("ghostscript")
    b.data_words("gstate", lcg_values(180, 128, 4096))
    b.data_words("path", lcg_values(31, 64, 1024))
    b.data_space("raster", 96 * 4)
    b.data_words("curve", lcg_values(5, 32, 64))

    synth.emit_field_chain(b, "gs_setdash", depth=6)
    synth.emit_field_chain(b, "gs_stroke", depth=6)
    synth.emit_field_chain(b, "gs_fill", depth=4)
    synth.emit_struct_chain(b, "gs_clip")
    synth.emit_poly_eval(b, "bezier_eval", "curve", 12)
    synth.emit_copy_loop(b, "fill_span", "path", "raster")

    def gs_args(mask, offset):
        return [
            "    la   $t0, gstate",
            f"    andi $t1, $s2, {mask}",
            "    sll  $t1, $t1, 4",
            "    add  $t2, $t0, $t1",
            f"    addi $a0, $t2, {offset}",
        ]

    phases = [
        ("gs_setdash", gs_args(7, 4),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("bezier_eval", ["    andi $a0, $s1, 15"],
         ["    add  $s2, $s2, $v0"]),
        ("gs_stroke", gs_args(15, 8),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("gs_fill", gs_args(5, 4),
         ["    add  $s2, $s2, $v0"]),
        ("fill_span", ["    li   $a0, 16"],
         ["    add  $s2, $s2, $v0"]),
        ("gs_clip", gs_args(3, 4),
         ["    add  $s2, $s2, $v0"]),
        ("gs_stroke", gs_args(9, 4),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(60 * scale)))
    return b.build()


registry.register("ghostscript", build,
                  "graphics-state interpreter + curve/span rendering")
