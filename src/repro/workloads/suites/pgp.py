"""pgp stand-in.

Public-key cryptography: long serial shift/xor/add chains over
registers (cipher rounds) with copies between half-rounds, a key
schedule built from small-constant adds, and almost no array indexing.
Fingerprint target: 7.9% moves / 4.0% reassoc / 1.0% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("pgp")
    b.data_words("keysched", lcg_values(322, 96, 4096))
    b.data_words("blockin", lcg_values(17, 32, 65536))
    b.data_space("blockout", 32 * 4)

    synth.emit_bitmix(b, "cipher_round")
    synth.emit_bitmix(b, "mdc_hash")
    synth.emit_struct_chain(b, "key_expand")
    synth.emit_copy_loop(b, "block_out", "blockin", "blockout")

    def key_args(mask):
        return [
            "    la   $t0, keysched",
            f"    andi $t1, $s1, {mask}",
            "    sll  $t1, $t1, 5",
            "    add  $t2, $t0, $t1",
            "    addi $a0, $t2, 4",
        ]

    phases = [
        ("cipher_round",
         ["    li   $a0, 16", "    move $a1, $s2"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("key_expand", key_args(7),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("mdc_hash",
         ["    li   $a0, 14", "    move $a1, $s1"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("block_out", ["    li   $a0, 16"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(56 * scale)))
    return b.build()


registry.register("pgp", build,
                  "cipher rounds: serial ALU chains + key schedule")
