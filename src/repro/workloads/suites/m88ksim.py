"""m88ksim stand-in.

The 88100 simulator is the paper's star reassociation benchmark (12.9%
of the stream, +23% IPC from reassociation alone): its decode/execute
loop is saturated with constant-offset accesses into the simulated
machine state, chained across the conditional branches of the decode
tree — exactly the cross-block immediate chains the fill unit combines.
It is also move-rich (8.2%) from operand-fetch copying, and its control
(driven by dhrystone) is highly predictable.
Fingerprint target: 8.2% moves / 12.9% reassoc / 1.2% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("m88ksim")
    b.data_words("cpustate", lcg_values(88, 160, 4096))
    b.data_words("devregs", lcg_values(11, 96, 4096))

    synth.emit_field_chain(b, "decode_op", depth=8)
    synth.emit_field_chain(b, "exec_alu", depth=7)
    synth.emit_field_chain(b, "load_operands", depth=6)
    synth.emit_struct_chain(b, "update_psr")
    synth.emit_struct_chain(b, "check_traps")

    def state_args(mask):
        return [
            "    la   $t0, cpustate",
            f"    andi $t1, $s2, {mask}",
            "    sll  $t1, $t1, 4",
            "    add  $t2, $t0, $t1",
            "    addi $a0, $t2, 4",    # caller-side pair: reassociates
        ]

    def dev_args(mask):
        return [
            "    la   $t0, devregs",
            f"    andi $t1, $s2, {mask}",
            "    sll  $t1, $t1, 4",
            "    add  $t2, $t0, $t1",
            "    addi $a0, $t2, 8",
        ]

    # Operand-fetch copying: each result is staged through a register
    # move before accumulation (the simulator's regfile read/write).
    move_post = ["    move $a3, $v0", "    add  $s2, $s2, $a3"]
    plain_post = ["    add  $s2, $s2, $v0"]

    phases = [
        ("decode_op", state_args(7), move_post),
        ("exec_alu", state_args(3), plain_post),
        ("load_operands", state_args(15), plain_post),
        ("update_psr", state_args(1), move_post),
        ("check_traps", dev_args(1), plain_post),
        ("exec_alu", state_args(31), plain_post),
        ("decode_op", state_args(11), plain_post),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(160 * scale)))
    return b.build()


registry.register("m88ksim", build,
                  "CPU-simulator decode loop: cross-block field offsets")
