"""gcc stand-in.

gcc is the classic poor-locality integer code: a large number of
distinct medium-hot routines touched in rotation (RTL passes), mixing
symbol hashing, list/tree walking and structure-field access. The
kernel emphasizes *code footprint*: eight distinct routines (several
struct-chain variants, two hash tables, list and copy loops) all touched
every outer iteration, pressuring the 4KB L1I and the trace cache.
Fingerprint target: 6.4% moves / 2.2% reassoc / 3.1% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("gcc")
    b.data_space("symtab", 128 * 4)
    b.data_space("rtltab", 128 * 4)
    b.data_words("rtlmem", lcg_values(157, 96, 4096))
    b.data_space("insns", 64 * 4)
    nodes = synth.linked_list_words(40, lambda i: f"uselist+{8 * i}")
    b.data_words("uselist", nodes)

    synth.emit_hash_loop(b, "sym_hash", "symtab", 0x7F)
    synth.emit_hash_loop(b, "rtl_hash", "rtltab", 0x7F)
    synth.emit_struct_chain(b, "walk_rtx")
    synth.emit_struct_chain(b, "walk_insn")
    synth.emit_struct_chain(b, "note_stores")
    synth.emit_list_walk(b, "du_chain", "uselist")
    synth.emit_copy_loop(b, "emit_insns", "rtlmem", "insns")
    synth.emit_array_sum_scaled(b, "reg_scan", "rtlmem", 64)

    def struct_args(slot_reg_shift):
        return [
            "    la   $t0, rtlmem",
            f"    andi $t1, $s1, {slot_reg_shift}",
            "    sll  $t1, $t1, 5",
            "    add  $t2, $t0, $t1",
            "    addi $a0, $t2, 4",
        ]

    phases = [
        ("sym_hash",
         ["    li   $a0, 10", "    move $a1, $s2"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("walk_rtx", struct_args(7),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("du_chain", [],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("rtl_hash",
         ["    li   $a0, 10", "    move $a1, $s1"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("walk_insn", struct_args(5),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("emit_insns", ["    li   $a0, 36"],
         ["    add  $s2, $s2, $v0"]),
        ("note_stores", struct_args(3),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("reg_scan", ["    li   $a0, 40"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(36 * scale)))
    return b.build()


registry.register("gcc", build,
                  "compiler-pass rotation: hashing, IR walking, emission")
