"""li (xlisp) stand-in.

A Lisp interpreter lives on cons cells: pointer chasing with constant
cursor copying (the register-move idiom — li is the paper's #2 move
benchmark at 8.0%), an eval dispatch loop, and garbage-collector-style
sweeps. Very little address arithmetic uses scaled indexing.
Fingerprint target: 8.0% moves / 2.1% reassoc / 1.3% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("li")
    cells = synth.linked_list_words(30, lambda i: f"heap+{8 * i}")
    b.data_words("heap", cells)
    freelist = synth.linked_list_words(24, lambda i: f"freecells+{8 * i}")
    b.data_words("freecells", freelist)
    b.data_words("forms", lcg_values(500, 48, 4))

    synth.emit_list_walk(b, "eval_list", "heap")
    synth.emit_list_walk(b, "sweep", "freecells")
    synth.emit_dispatch_loop(b, "eval_form", "forms", handler_count=4)
    synth.emit_struct_chain(b, "env_lookup")
    synth.emit_copy_loop(b, "gc_copy", "forms", "tospace")
    b.data_space("tospace", 48 * 4)

    phases = [
        ("eval_list", [],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("eval_form", ["    li   $a0, 20"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("eval_list", [],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("env_lookup",
         ["    la   $t0, heap",
          "    andi $t1, $s1, 15",
          "    sll  $t1, $t1, 4",
          "    add  $t2, $t0, $t1",
          "    addi $a0, $t2, 4"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("sweep", [],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("gc_copy", ["    li   $a0, 56"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(46 * scale)))
    return b.build()


registry.register("li", build,
                  "cons-cell interpreter: pointer chasing + eval dispatch")
