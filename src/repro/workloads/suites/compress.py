"""compress stand-in.

SPEC's compress is LZW: dictionary hashing over the input stream plus
bulk buffer movement. The kernel mirrors that: a hash-probe-update loop
(long mixing shifts, a short scaled index), word-copy loops, and a
little serial bit work. Optimization fingerprint target (paper
Table 2): 3.0% moves / 1.5% reassoc / 3.8% scaled adds.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("compress")
    b.data_space("htab", 256 * 4)
    b.data_words("inbuf", lcg_values(30000, 64))
    b.data_space("outbuf", 64 * 4)
    b.data_words("codes", lcg_values(9, 64, 4096))

    synth.emit_hash_loop(b, "hash_update", "htab", 0xFF, feedback=True)
    synth.emit_copy_loop(b, "block_copy", "inbuf", "outbuf")
    synth.emit_bitmix(b, "output_bits")
    synth.emit_struct_chain(b, "dict_entry")

    phases = [
        ("hash_update",
         ["    li   $a0, 24",
          "    move $a1, $s2"],
         ["    add  $s2, $s2, $v0"]),
        ("block_copy",
         ["    li   $a0, 48"],
         ["    add  $s2, $s2, $v0"]),
        ("output_bits",
         ["    li   $a0, 20",
          "    move $a1, $s2"],
         ["    add  $s2, $s2, $v0"]),
        ("dict_entry",
         ["    la   $t0, codes",
          "    andi $t1, $s1, 7",
          "    sll  $t1, $t1, 5",
          "    add  $t2, $t0, $t1",
          "    addi $a0, $t2, 4"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(44 * scale)))
    return b.build()


registry.register("compress", build,
                  "LZW-style dictionary hashing + buffer movement")
