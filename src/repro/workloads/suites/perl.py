"""perl stand-in.

The Perl interpreter: opcode dispatch through a handler table (indirect
jumps), symbol-table hashing for variables, and stack-cell moves in the
handlers. Fingerprint target: 6.3% moves / 1.1% reassoc / 3.3% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("perl")
    b.data_words("optree", lcg_values(41, 64, 4))
    b.data_space("symtab", 128 * 4)
    nodes = synth.linked_list_words(32, lambda i: f"svlist+{8 * i}")
    b.data_words("svlist", nodes)

    synth.emit_dispatch_loop(b, "run_ops", "optree", handler_count=4)
    synth.emit_hash_loop(b, "hv_fetch", "symtab", 0x7F)
    synth.emit_list_walk(b, "sv_clean", "svlist")
    synth.emit_bitmix(b, "string_hash")

    phases = [
        ("run_ops", ["    li   $a0, 28"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("hv_fetch",
         ["    li   $a0, 12", "    move $a1, $s2"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("run_ops", ["    li   $a0, 20"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("sv_clean", [],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("string_hash",
         ["    li   $a0, 10", "    move $a1, $s1"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(40 * scale)))
    return b.build()


registry.register("perl", build,
                  "opcode dispatch + symbol hashing interpreter")
