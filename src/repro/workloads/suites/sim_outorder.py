"""sim-outorder stand-in.

SimpleScalar's own out-of-order simulator: cache-index hashing, queue
array scans, and bit-field manipulation — a self-referential choice the
paper's authors clearly enjoyed. Fingerprint target:
4.9% moves / 1.1% reassoc / 3.1% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("sim-outorder")
    b.data_space("cachetags", 128 * 4)
    b.data_words("ruu", lcg_values(100, 96, 4096))
    b.data_words("events", lcg_values(55, 64, 1024))
    b.data_space("lsq", 64 * 4)

    synth.emit_hash_loop(b, "cache_probe", "cachetags", 0x7F, feedback=True)
    synth.emit_array_sum_scaled(b, "ruu_scan", "ruu", 96)
    synth.emit_bitmix(b, "dep_mask")
    synth.emit_copy_loop(b, "lsq_shift", "events", "lsq")
    synth.emit_struct_chain(b, "ruu_entry")

    phases = [
        ("cache_probe",
         ["    li   $a0, 14", "    move $a1, $s1"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("ruu_scan", ["    li   $a0, 28"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("dep_mask",
         ["    li   $a0, 10", "    move $a1, $s2"],
         ["    add  $s2, $s2, $v0"]),
        ("ruu_entry",
         ["    la   $t0, ruu",
          "    andi $t1, $s1, 7",
          "    sll  $t1, $t1, 5",
          "    add  $t2, $t0, $t1",
          "    addi $a0, $t2, 4"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("lsq_shift", ["    li   $a0, 32"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(44 * scale)))
    return b.build()


registry.register("sim-outorder", build,
                  "simulator loops: cache hashing, queue scans, bit masks")
