"""vortex stand-in.

The OO database: object-record field access, membership lists, and a
great deal of call glue copying handles between registers — the
paper's #1 move benchmark (9.4%). Fingerprint target:
9.4% moves / 3.9% reassoc / 1.9% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("vortex")
    b.data_words("objects", lcg_values(214, 128, 4096))
    chain_a = synth.linked_list_words(20, lambda i: f"members+{8 * i}")
    b.data_words("members", chain_a)
    chain_b = synth.linked_list_words(14, lambda i: f"index+{8 * i}")
    b.data_words("index", chain_b)

    synth.emit_struct_chain(b, "obj_fields")
    synth.emit_field_chain(b, "attr_lookup", depth=3)
    synth.emit_list_walk(b, "member_scan", "members")
    synth.emit_list_walk(b, "index_scan", "index")
    synth.emit_copy_loop(b, "obj_clone", "objects", "objects")

    def obj_args(mask):
        return [
            "    la   $t0, objects",
            f"    andi $t1, $s1, {mask}",
            "    sll  $t1, $t1, 4",
            "    add  $t2, $t0, $t1",
            "    addi $a0, $t2, 4",
        ]

    move_post = ["    move $a3, $v0", "    add  $s2, $s2, $a3"]
    phases = [
        ("member_scan", [], move_post),
        ("obj_fields", obj_args(7), move_post),
        ("index_scan", [], move_post),
        ("attr_lookup", obj_args(15), move_post),
        ("obj_clone", ["    li   $a0, 36"], move_post),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(60 * scale)))
    return b.build()


registry.register("vortex", build,
                  "OO database: record fields, member lists, handle copies")
