"""Benchmark suite modules. Importing this package registers all
fifteen benchmarks with :mod:`repro.workloads.registry`."""

from repro.workloads.suites import (  # noqa: F401
    compress,
    gcc,
    go,
    ijpeg,
    li,
    m88ksim,
    perl,
    vortex,
    gnuchess,
    ghostscript,
    pgp,
    gnuplot,
    python_bm,
    sim_outorder,
    tex,
)
