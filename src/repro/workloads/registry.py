"""Benchmark registry: the fifteen stand-ins, their builders, and the
paper-reported figures each should be compared against.

``PAPER_TABLE2`` records the paper's Table 2 (percentage of committed
instructions transformed, per optimization) — the target *fingerprint*
each synthetic kernel is tuned toward. ``PAPER_TABLE1`` records Table 1
(simulated instruction counts and inputs) for the documentation runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.program.image import Program


@dataclass(frozen=True)
class Table2Row:
    """The paper's Table 2 entry for one benchmark (percent)."""

    moves: float
    reassoc: float
    scaled: float
    total: float


@dataclass(frozen=True)
class Table1Row:
    """The paper's Table 1 entry: simulated length and input set."""

    inst_count: str
    input_set: str


@dataclass(frozen=True)
class BenchmarkSpec:
    """Registry entry for one benchmark."""

    name: str
    builder: Callable
    suite: str                  # "SPECint95" or "UNIX"
    paper_table2: Table2Row
    paper_table1: Table1Row
    description: str

    def build(self, scale: float = 1.0) -> Program:
        return self.builder(scale)


#: Paper Table 2, verbatim.
PAPER_TABLE2 = {
    "compress": Table2Row(3.0, 1.5, 3.8, 8.3),
    "gcc": Table2Row(6.4, 2.2, 3.1, 11.7),
    "go": Table2Row(2.5, 0.7, 9.6, 12.8),
    "ijpeg": Table2Row(4.6, 2.1, 5.9, 12.6),
    "li": Table2Row(8.0, 2.1, 1.3, 11.4),
    "m88ksim": Table2Row(8.2, 12.9, 1.2, 22.3),
    "perl": Table2Row(6.3, 1.1, 3.3, 10.7),
    "vortex": Table2Row(9.4, 3.9, 1.9, 15.2),
    "gnuchess": Table2Row(3.4, 10.4, 5.7, 19.5),
    "ghostscript": Table2Row(4.6, 7.9, 1.9, 14.4),
    "pgp": Table2Row(7.9, 4.0, 1.0, 12.9),
    "gnuplot": Table2Row(11.3, 1.4, 2.3, 15.0),
    "python": Table2Row(6.3, 2.8, 2.8, 11.9),
    "sim-outorder": Table2Row(4.9, 1.1, 3.1, 9.1),
    "tex": Table2Row(3.1, 0.6, 5.2, 8.9),
}

#: Paper Table 1, verbatim.
PAPER_TABLE1 = {
    "compress": Table1Row("95M", "test.in (30000 elements)"),
    "gcc": Table1Row("157M", "jump.i"),
    "go": Table1Row("151M", "2stone9.in (abbreviated)"),
    "ijpeg": Table1Row("500M", "penguin.ppm"),
    "li": Table1Row("500M", "train.lsp"),
    "m88ksim": Table1Row("493M", "dhry.test"),
    "perl": Table1Row("41M", "scrabbl.pl"),
    "vortex": Table1Row("214M", "vortex.in (abbreviated)"),
    "gnuchess": Table1Row("119M", "-"),
    "ghostscript": Table1Row("180M", "-"),
    "pgp": Table1Row("322M", "-"),
    "gnuplot": Table1Row("284M", "-"),
    "python": Table1Row("220M", "-"),
    "sim-outorder": Table1Row("100M", "-"),
    "tex": Table1Row("164M", "-"),
}

_ORDER = [
    "compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl", "vortex",
    "gnuchess", "ghostscript", "pgp", "gnuplot", "python",
    "sim-outorder", "tex",
]

_SPECINT = {"compress", "gcc", "go", "ijpeg", "li", "m88ksim", "perl",
            "vortex"}

_REGISTRY: dict = {}


def register(name: str, builder: Callable, description: str) -> None:
    """Register a benchmark builder (called by the suite modules)."""
    _REGISTRY[name] = BenchmarkSpec(
        name=name,
        builder=builder,
        suite="SPECint95" if name in _SPECINT else "UNIX",
        paper_table2=PAPER_TABLE2[name],
        paper_table1=PAPER_TABLE1[name],
        description=description,
    )


def names() -> list:
    _ensure_loaded()
    return list(_ORDER)


def spec(name: str) -> BenchmarkSpec:
    _ensure_loaded()
    return _REGISTRY[name]


def specint_names() -> list:
    return [n for n in names() if n in _SPECINT]


_LOADED = False


def _ensure_loaded() -> None:
    """Import benchmark modules lazily (they self-register)."""
    global _LOADED
    if _LOADED:
        return
    from repro.workloads import suites  # noqa: F401  (registers on import)
    _LOADED = True


__all__ = [
    "BenchmarkSpec", "Table1Row", "Table2Row",
    "PAPER_TABLE1", "PAPER_TABLE2",
    "names", "spec", "specint_names", "register",
]
