"""Bit-for-bit equivalence of the segment-level timing replay.

The correctness bar for the timing memo is absolute: with the memo
enabled, cycle counts, every :class:`SimResult` counter and the full
telemetry snapshot (minus the memo's own ``engine.replay.*`` scopes)
must equal the slow path exactly — on every workload, under every
paper machine configuration, with shadow re-simulation enabled, and
with wrong-path modeling active (which forces the slow path outright).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine import run_program
from repro import workloads

#: the four paper machines the acceptance matrix runs: measured
#: baseline, a single-optimization machine, the combined paper
#: configuration, and the extended pass set.
PAPER_CONFIGS = {
    "baseline": OptimizationConfig.none,
    "moves": lambda: OptimizationConfig.only("moves"),
    "all": OptimizationConfig.all,
    "extended": OptimizationConfig.extended,
}

_TRACES: dict = {}


def _trace(name: str, scale: float):
    key = (name, scale)
    if key not in _TRACES:
        _TRACES[key] = run_program(workloads.build(name, scale=scale))
    return _TRACES[key]


def _comparable(result) -> dict:
    """The full result with the memo's own telemetry scopes removed
    (they are the only sanctioned difference between the two paths)."""
    out = dataclasses.asdict(result)
    del out["config_label"]     # run labels differ by construction
    out["telemetry"] = {
        scope: value for scope, value in result.telemetry.items()
        if not scope.startswith("engine.replay.")}
    return out


def _run_pair(trace, config: SimConfig, benchmark: str):
    off = dataclasses.replace(config, timing_memo=False)
    r_off = PipelineModel(off).run(trace, benchmark=benchmark,
                                   label="memo-off")
    r_on = PipelineModel(config).run(trace, benchmark=benchmark,
                                     label="memo-on")
    return r_off, r_on


@pytest.mark.parametrize("config_name", sorted(PAPER_CONFIGS))
@pytest.mark.parametrize("bench", workloads.names())
def test_memo_bit_identical_every_workload(bench, config_name):
    trace = _trace(bench, 0.2)
    config = SimConfig.tiny(PAPER_CONFIGS[config_name]())
    r_off, r_on = _run_pair(trace, config, bench)
    assert r_on.cycles == r_off.cycles
    assert _comparable(r_on) == _comparable(r_off)


@pytest.mark.parametrize("bench,cycles",
                         [("compress", 16344), ("li", 13709)])
def test_seed_cycles_preserved_with_memo(bench, cycles):
    """The paper-config seed anchors, at the bench-trajectory scale."""
    trace = _trace(bench, 0.5)
    config = SimConfig.paper(OptimizationConfig.all())
    r_off, r_on = _run_pair(trace, config, bench)
    assert r_off.cycles == cycles
    assert r_on.cycles == cycles
    assert _comparable(r_on) == _comparable(r_off)
    assert r_on.telemetry.get("engine.replay.hit", 0) > 0


@pytest.mark.parametrize("policy", ["lru", "srrip", "trrip"])
@pytest.mark.parametrize("bench", ["compress", "li"])
def test_memo_bit_identical_under_every_policy(bench, policy):
    """Replacement-policy metadata is timing state that rides inside
    the cache digests; with any policy enabled the memo must still be
    bit-for-bit against the slow path. The program is passed so TRRIP
    gets its static temperature hints on both paths."""
    program = workloads.build(bench, scale=0.2)
    trace = _trace(bench, 0.2)
    config = SimConfig.tiny(OptimizationConfig.all())
    config = dataclasses.replace(
        config,
        trace_cache=dataclasses.replace(config.trace_cache,
                                        policy=policy),
        hierarchy=dataclasses.replace(config.hierarchy, policy=policy))
    off = dataclasses.replace(config, timing_memo=False)
    r_off = PipelineModel(off).run(trace, benchmark=bench,
                                   label="memo-off", program=program)
    r_on = PipelineModel(config).run(trace, benchmark=bench,
                                     label="memo-on", program=program)
    assert r_on.cycles == r_off.cycles
    assert _comparable(r_on) == _comparable(r_off)


def test_shadow_mode_checks_and_stays_clean():
    """With ``replay_shadow_every=1`` every would-be replay re-runs
    the slow path and asserts the fresh capture equals the memoized
    record; a clean run proves record stability."""
    trace = _trace("compress", 0.2)
    config = dataclasses.replace(
        SimConfig.tiny(OptimizationConfig.all()), replay_shadow_every=1)
    r_off, r_on = _run_pair(trace, config, "compress")
    assert _comparable(r_on) == _comparable(r_off)
    assert r_on.telemetry.get("engine.replay.shadow.checked", 0) > 0
    assert r_on.telemetry.get("engine.replay.shadow.mismatch", 0) == 0


def test_wrong_path_modeling_forces_slow_path():
    """Wrong-path fetch modeling observes per-instruction state the
    memo cannot replay; the controller must bypass for the whole run
    and results must still match the memo-off machine."""
    program = workloads.build("compress", scale=0.2)
    trace = run_program(program)
    config = dataclasses.replace(
        SimConfig.tiny(OptimizationConfig.all()), model_wrong_path=True)
    off = dataclasses.replace(config, timing_memo=False)
    r_off = PipelineModel(off).run(trace, benchmark="compress",
                                   label="memo-off", program=program)
    r_on = PipelineModel(config).run(trace, benchmark="compress",
                                     label="memo-on", program=program)
    assert _comparable(r_on) == _comparable(r_off)
    assert r_on.telemetry.get("engine.replay.hit", 0) == 0
    assert r_on.telemetry.get("engine.replay.miss", 0) == 0


def test_replay_counters_present_and_consistent():
    trace = _trace("li", 0.2)
    config = SimConfig.tiny(OptimizationConfig.all())
    result = PipelineModel(config).run(trace, benchmark="li",
                                       label="memo-on")
    tel = result.telemetry
    hits = tel.get("engine.replay.hit", 0)
    misses = tel.get("engine.replay.miss", 0)
    assert hits > 0
    assert misses > 0
    assert tel.get("engine.replay.memo.entries", 0) > 0
    assert tel.get("engine.replay.memo.approx_bytes", 0) > 0
