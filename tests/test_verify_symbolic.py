"""Symbolic evaluator tests: term normalization is what makes the
fill unit's sound rewrites literally term-equal."""

from repro.isa.instruction import GuardAnnotation, Instruction, \
    ScaleAnnotation
from repro.isa.opcodes import Op
from repro.tracecache.segment import BranchInfo, TraceSegment
from repro.verify.symbolic import (
    add_const,
    add_terms,
    const,
    evaluate_segment,
    init,
    render_term,
    shl,
)


def seg(instrs, branches=(), start_pc=0x1000):
    for idx, instr in enumerate(instrs):
        instr.pc = start_pc + 4 * idx
        instr.orig_index = idx
    return TraceSegment(start_pc=start_pc, instrs=list(instrs),
                        branches=list(branches))


def test_addi_chain_folds_to_single_sum():
    """ADDI+ADDI equals the reassociated single ADDI."""
    chain = seg([
        Instruction(Op.ADDI, rd=9, rs=8, imm=4),
        Instruction(Op.ADDI, rd=10, rs=9, imm=4),
    ])
    single = seg([
        Instruction(Op.ADDI, rd=9, rs=8, imm=4),
        Instruction(Op.ADDI, rd=10, rs=8, imm=8),
    ])
    assert evaluate_segment(chain).read(10) == \
        evaluate_segment(single).read(10) == ("sum", init(8), 8)


def test_sll_add_equals_scaled_add():
    """SLL+ADD equals the ADD annotated with a scale."""
    pair = seg([
        Instruction(Op.SLL, rd=9, rs=8, imm=2),
        Instruction(Op.ADD, rd=10, rs=9, rt=11),
    ])
    scaled_add = Instruction(Op.ADD, rd=10, rs=9, rt=11)
    scaled_add.scale = ScaleAnnotation(src=8, shamt=2)
    scaled = seg([
        Instruction(Op.SLL, rd=9, rs=8, imm=2),
        scaled_add,
    ])
    assert evaluate_segment(pair).read(10) == \
        evaluate_segment(scaled).read(10)


def test_commutative_sort_makes_operand_swap_invisible():
    a = seg([Instruction(Op.ADD, rd=10, rs=8, rt=9)])
    b = seg([Instruction(Op.ADD, rd=10, rs=9, rt=8)])
    assert evaluate_segment(a).read(10) == evaluate_segment(b).read(10)


def test_move_idioms_normalize_to_source():
    """Marked or not, every move idiom evaluates to its source's term
    (the moves pass's alias rewriting relies on these identities)."""
    for instr in (
            Instruction(Op.ADDI, rd=9, rs=8, imm=0),
            Instruction(Op.OR, rd=9, rs=8, rt=0),
            Instruction(Op.XOR, rd=9, rs=0, rt=8),
            Instruction(Op.SUB, rd=9, rs=8, rt=0),
            Instruction(Op.SLL, rd=9, rs=8, imm=0),
    ):
        assert evaluate_segment(seg([instr])).read(9) == init(8)


def test_zero_value_identity_folds():
    """x ^ 0 == x even when the zero comes from a register the segment
    itself zeroed (not the architected zero register)."""
    segment = seg([
        Instruction(Op.ADDI, rd=8, rs=0, imm=0),   # t0 = 0
        Instruction(Op.XOR, rd=9, rs=8, rt=10),    # t1 = 0 ^ t2
    ])
    assert evaluate_segment(segment).read(9) == init(10)


def test_store_log_and_load_epoch():
    segment = seg([
        Instruction(Op.SW, rs=29, rt=8, imm=4),
        Instruction(Op.LW, rd=9, rs=29, imm=4),
    ])
    state = evaluate_segment(segment)
    assert len(state.stores) == 1
    store = state.stores[0]
    assert store.address == ("sum", init(29), 4)
    assert store.value == init(8)
    # the load is tagged with the store epoch it observed
    assert state.read(9) == ("load", "w", ("sum", init(29), 4), 1)


def test_branch_direction_seeds_assumption():
    branch = Instruction(Op.BEQ, rs=8, rt=0, imm=8)
    segment = seg([branch], branches=[
        BranchInfo(index=0, pc=0x1000, direction=False, promoted=False)])
    state = evaluate_segment(segment)
    [cond] = [b.condition for b in state.branches]
    # BEQ not taken along the path => rs == 0 is False
    assert state.assumptions[cond] is False


def test_guard_folds_under_known_assumption():
    """With the branch direction assumed, a guarded body folds to the
    active leg — the predication-equivalence cornerstone."""
    branch = Instruction(Op.BEQ, rs=8, rt=0, imm=8)
    original = seg([
        branch,
        Instruction(Op.ADDI, rd=9, rs=10, imm=1),
    ], branches=[BranchInfo(0, 0x1000, direction=False, promoted=False)])
    orig_state = evaluate_segment(original)

    body = Instruction(Op.ADDI, rd=9, rs=10, imm=1)
    body.guard = GuardAnnotation(reg=8, execute_if_zero=False)
    converted = seg([Instruction(Op.NOP), body])
    opt_state = evaluate_segment(converted,
                                 assumptions=orig_state.assumptions)
    assert opt_state.read(9) == orig_state.read(9)


def test_guard_without_assumption_is_a_select():
    body = Instruction(Op.ADDI, rd=9, rs=10, imm=1)
    body.guard = GuardAnnotation(reg=8, execute_if_zero=False)
    state = evaluate_segment(seg([Instruction(Op.NOP), body]))
    assert state.read(9)[0] == "select"


def test_term_helpers_and_render():
    t = add_terms(add_const(init(8), 4), const(3))
    assert t == ("sum", init(8), 7)
    assert shl(const(2), 3) == const(16)
    assert shl(shl(init(8), 1), 2) == ("shl", init(8), 3)
    text = render_term(("add", (init(8), ("shl", init(9), 2))))
    assert "r8@in" in text and "<< 2" in text
