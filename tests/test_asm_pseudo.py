"""Pseudo-instruction expansion tests."""

import pytest

from repro.asm.pseudo import _hi_lo, expand
from repro.errors import AssemblerError


def test_move_expands_to_addi_zero():
    assert expand("move", ["$t0", "$t1"], 1) == \
        [("addi", ["$t0", "$t1", "0"])]


def test_clear_expands_to_zero_move():
    assert expand("clear", ["$t0"], 1) == [("addi", ["$t0", "$zero", "0"])]


def test_li_small_single_instruction():
    assert expand("li", ["$t0", "42"], 1) == \
        [("addi", ["$t0", "$zero", "42"])]
    assert expand("li", ["$t0", "-32768"], 1) == \
        [("addi", ["$t0", "$zero", "-32768"])]


def test_li_large_expands_to_pair():
    out = expand("li", ["$t0", "0x12345"], 1)
    assert out[0][0] == "lui"
    assert out[1][0] == "addi"


def test_li_exact_multiple_of_64k_skips_low_half():
    out = expand("li", ["$t0", "0x20000"], 1)
    assert len(out) == 1 and out[0][0] == "lui"


def test_hi_lo_reconstruction():
    for value in (0x12345678, -1, 0x7FFFFFFF, -0x80000000, 0xFFFF,
                  0x8000, 0x18000, 123456789):
        hi, lo = _hi_lo(value)
        from repro.isa.semantics import to_s32
        assert to_s32((hi << 16) + lo) == to_s32(value)


def test_branch_pseudos_use_slt_pairs():
    out = expand("blt", ["$t0", "$t1", "loop"], 1)
    assert out == [("slt", ["$at", "$t0", "$t1"]),
                   ("bne", ["$at", "$zero", "loop"])]
    out = expand("bge", ["$t0", "$t1", "loop"], 1)
    assert out[1][0] == "beq"
    out = expand("bgt", ["$t0", "$t1", "loop"], 1)
    assert out[0] == ("slt", ["$at", "$t1", "$t0"])


def test_unsigned_compare_branches():
    assert expand("bltu", ["$t0", "$t1", "x"], 1)[0][0] == "sltu"


def test_ret_and_call():
    assert expand("ret", [], 1) == [("jr", ["$ra"])]
    assert expand("call", ["f"], 1) == [("jal", ["f"])]


def test_b_is_unconditional_jump():
    assert expand("b", ["dest"], 1) == [("j", ["dest"])]


def test_subi_negates():
    assert expand("subi", ["$t0", "$t1", "5"], 1) == \
        [("addi", ["$t0", "$t1", "-5"])]


def test_neg_and_not():
    assert expand("neg", ["$t0", "$t1"], 1) == \
        [("sub", ["$t0", "$zero", "$t1"])]
    assert expand("not", ["$t0", "$t1"], 1) == \
        [("nor", ["$t0", "$t1", "$zero"])]


def test_seq_sne():
    assert expand("seq", ["$t0", "$t1", "$t2"], 1)[1][0] == "sltiu"
    assert expand("sne", ["$t0", "$t1", "$t2"], 1)[1][0] == "sltu"


def test_operand_count_checked():
    with pytest.raises(AssemblerError):
        expand("move", ["$t0"], 1)
    with pytest.raises(AssemblerError):
        expand("ret", ["$t0"], 1)


def test_unknown_pseudo_rejected():
    with pytest.raises(AssemblerError):
        expand("frob", [], 1)
