"""Dynamic-predication pass tests (paper §1's transformation class)."""

from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.instruction import GuardAnnotation, Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import evaluate
from tests.helpers import build_segments

PRED = OptimizationConfig.only("predication")

HAMMOCK = """
main:
    li   $t9, 3
loop:
    andi $t5, $t0, 1
    beq  $t5, $zero, skip
    addi $t1, $t1, 17
skip:
    addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def segments_for(source, opts=PRED, **kw):
    _, _, segments = build_segments(source, opts, **kw)
    return segments


def find_guarded(segments):
    return [i for seg in segments for i in seg.instrs
            if i.guard is not None]


def test_fallthrough_hammock_converted():
    segments = segments_for(HAMMOCK)
    guarded = find_guarded(segments)
    assert guarded
    body = guarded[0]
    assert body.op is Op.ADDI and body.imm == 17
    assert body.guard.reg == 13                # $t5
    assert body.guard.execute_if_zero is False  # beq skips when zero


def test_branch_becomes_nop_and_leaves_branch_list():
    segments = segments_for(HAMMOCK)
    for seg in segments:
        for idx, instr in enumerate(seg.instrs):
            if instr.guard is not None:
                assert seg.instrs[idx - 1].op is Op.NOP
        for info in seg.branches:
            assert seg.instrs[info.index].is_cond_branch()
        seg.validate()


def test_taken_path_segments_not_converted():
    """A segment built from the taken path has no hammock body to
    guard; its branch must survive."""
    segments = segments_for(HAMMOCK)
    taken_like = [seg for seg in segments
                  if any(i.is_cond_branch() and i.op is Op.BEQ
                         for i in seg.instrs)]
    for seg in taken_like:
        beqs = [i for i in seg.instrs if i.op is Op.BEQ]
        assert beqs     # the surviving, taken-direction occurrences


def test_promoted_branch_not_converted():
    """Strongly biased branches predict fine; predication would only
    add a data dependence (the pass checks the bias table)."""
    segments = segments_for("""
    main:
        li   $t9, 40
    loop:
        beq  $zero, $t8, skip    # t8 stays 0: never taken, promotable
        addi $t1, $t1, 1
    skip:
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """, promote_all=True)
    assert not find_guarded(segments)


def test_memory_body_not_converted():
    segments = segments_for("""
    main:
        andi $t5, $t0, 1
        beq  $t5, $zero, skip
        sw   $t1, 0($sp)
    skip:
        halt
    """)
    assert not find_guarded(segments)


def test_multi_instruction_skip_not_converted():
    segments = segments_for("""
    main:
        andi $t5, $t0, 1
        beq  $t5, $zero, skip
        addi $t1, $t1, 1
        addi $t2, $t2, 2
    skip:
        halt
    """)
    assert not find_guarded(segments)


def test_compare_two_registers_not_converted():
    segments = segments_for("""
    main:
        andi $t5, $t0, 1
        beq  $t5, $t6, skip
        addi $t1, $t1, 1
    skip:
        halt
    """)
    assert not find_guarded(segments)


def test_bne_sense_inverted():
    segments = segments_for("""
    main:
        li   $t5, 1
        bne  $t5, $zero, skip    # taken... need fall-through: use t5=0
        addi $t1, $t1, 1
    skip:
        halt
    """)
    # t5 == 1: bne taken -> taken-path segment -> no conversion here.
    assert not find_guarded(segments)
    segments = segments_for("""
    main:
        bne  $t5, $zero, skip    # t5 == 0: falls through
        addi $t1, $t1, 1
    skip:
        halt
    """)
    guarded = find_guarded(segments)
    assert guarded and guarded[0].guard.execute_if_zero is True


def test_guard_semantics_both_outcomes():
    body = Instruction(Op.ADDI, rd=9, rs=9, imm=17,
                       guard=GuardAnnotation(reg=13,
                                             execute_if_zero=False))
    active = evaluate(body, {9: 100, 13: 1}.get)
    assert active.value == 117
    inactive = evaluate(body, {9: 100, 13: 0}.get)
    assert inactive.dest == 9 and inactive.value == 100


def test_pipeline_removes_mispredicts():
    """End to end: an unpredictable single-instruction hammock stops
    mispredicting once predicated, and IPC improves."""
    from repro.core.config import SimConfig
    from repro.core.pipeline import PipelineModel
    from tests.helpers import run_asm
    source = """
    main:
        li   $t9, 800
        li   $t5, 12345
        li   $t7, 30341
    loop:
        mult $t5, $t5, $t7
        addi $t5, $t5, 13
        srl  $t6, $t5, 7
        andi $t6, $t6, 1
        beq  $t6, $zero, skip
        addi $t1, $t1, 17
    skip:
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """
    _, trace = run_asm(source)
    base = PipelineModel(SimConfig.paper()).run(trace, "t", "base")
    pred = PipelineModel(SimConfig.paper(PRED)).run(trace, "t", "pred")
    assert pred.mispredicts < base.mispredicts / 4
    assert pred.ipc > base.ipc
    assert pred.predicated_branches > 100
    assert pred.predication_phantoms > 50
    # instruction accounting is conserved despite phantoms
    assert pred.instructions == base.instructions == len(trace)


def test_guarded_instruction_sources_include_guard_and_dest():
    body = Instruction(Op.ADDI, rd=9, rs=8, imm=4,
                       guard=GuardAnnotation(reg=13,
                                             execute_if_zero=True))
    assert set(body.sources()) == {8, 13, 9}
