"""Sparse memory tests."""

import pytest

from repro.errors import ExecutionError
from repro.machine.memory import PAGE_SIZE, Memory


def test_reads_default_to_zero():
    mem = Memory()
    assert mem.load_word(0x1000) == 0
    assert mem.load(0xFFFF0, 1, signed=False) == 0


def test_word_round_trip():
    mem = Memory()
    mem.store_word(0x100, 123456)
    assert mem.load_word(0x100) == 123456


def test_negative_word_round_trip():
    mem = Memory()
    mem.store_word(0x100, -5)
    assert mem.load_word(0x100) == -5
    assert mem.load(0x100, 4, signed=False) == 0xFFFFFFFB


def test_byte_and_half_sizes():
    mem = Memory()
    mem.store(0x200, 0xAB, 1)
    mem.store(0x202, 0xBEEF, 2)
    assert mem.load(0x200, 1, signed=False) == 0xAB
    assert mem.load(0x202, 2, signed=False) == 0xBEEF


def test_sign_extension_on_load():
    mem = Memory()
    mem.store(0x300, 0x80, 1)
    assert mem.load(0x300, 1, signed=True) == -128
    assert mem.load(0x300, 1, signed=False) == 128
    mem.store(0x304, 0x8000, 2)
    assert mem.load(0x304, 2, signed=True) == -32768


def test_little_endian_layout():
    mem = Memory()
    mem.store_word(0x400, 0x04030201)
    assert mem.load(0x400, 1, signed=False) == 0x01
    assert mem.load(0x403, 1, signed=False) == 0x04


def test_store_truncates_to_size():
    mem = Memory()
    mem.store(0x500, 0x1FF, 1)
    assert mem.load(0x500, 1, signed=False) == 0xFF


def test_misaligned_access_rejected():
    mem = Memory()
    with pytest.raises(ExecutionError):
        mem.load(0x101, 4, signed=True)
    with pytest.raises(ExecutionError):
        mem.store(0x102, 1, 4)
    with pytest.raises(ExecutionError):
        mem.load(0x101, 2, signed=False)


def test_byte_access_never_misaligned():
    mem = Memory()
    mem.store(0x101, 7, 1)
    assert mem.load(0x101, 1, signed=False) == 7


def test_bulk_bytes_cross_page():
    mem = Memory()
    data = bytes(range(256)) * 20  # > one page
    base = PAGE_SIZE - 100
    mem.write_bytes(base, data)
    assert mem.read_bytes(base, len(data)) == data


def test_pages_allocated_lazily():
    mem = Memory()
    assert mem.touched_pages() == 0
    mem.store_word(0, 1)
    mem.store_word(10 * PAGE_SIZE, 1)
    assert mem.touched_pages() == 2


def test_snapshot_is_deep():
    mem = Memory()
    mem.store_word(0x100, 7)
    snap = mem.snapshot()
    mem.store_word(0x100, 9)
    key = 0x100 >> 12
    assert snap[key][0x100:0x104] == (7).to_bytes(4, "little")


def test_distant_addresses_independent():
    mem = Memory()
    mem.store_word(0x0, 1)
    mem.store_word(0x7FFFFFFC, 2)
    assert mem.load_word(0x0) == 1
    assert mem.load_word(0x7FFFFFFC) == 2
