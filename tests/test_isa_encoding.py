"""Binary encoding round-trip and error tests."""

import pytest

from repro.errors import EncodingError
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


def roundtrip(instr: Instruction) -> Instruction:
    word = encode(instr)
    assert 0 <= word <= 0xFFFFFFFF
    return decode(word)


def assert_same(a: Instruction, b: Instruction) -> None:
    assert (a.op, a.rd, a.rs, a.rt, a.imm) == (b.op, b.rd, b.rs, b.rt, b.imm)


@pytest.mark.parametrize("instr", [
    Instruction(Op.ADD, rd=1, rs=2, rt=3),
    Instruction(Op.SUB, rd=31, rs=0, rt=15),
    Instruction(Op.NOR, rd=9, rs=10, rt=11),
    Instruction(Op.SLT, rd=1, rs=2, rt=3),
    Instruction(Op.SLTU, rd=1, rs=2, rt=3),
    Instruction(Op.MULT, rd=4, rs=5, rt=6),
    Instruction(Op.DIV, rd=4, rs=5, rt=6),
    Instruction(Op.SLLV, rd=4, rs=5, rt=6),
])
def test_r3_roundtrip(instr):
    assert_same(instr, roundtrip(instr))


@pytest.mark.parametrize("imm", [-32768, -1, 0, 1, 12345, 32767])
def test_addi_immediate_range(imm):
    instr = Instruction(Op.ADDI, rd=4, rs=5, imm=imm)
    assert_same(instr, roundtrip(instr))


def test_immediate_overflow_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADDI, rd=4, rs=5, imm=40000))
    with pytest.raises(EncodingError):
        encode(Instruction(Op.ADDI, rd=4, rs=5, imm=-40000))


@pytest.mark.parametrize("shamt", [0, 1, 2, 3, 15, 31])
def test_shift_roundtrip(shamt):
    for op in (Op.SLL, Op.SRL, Op.SRA):
        instr = Instruction(op, rd=4, rs=5, imm=shamt)
        assert_same(instr, roundtrip(instr))


def test_shift_amount_out_of_range():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.SLL, rd=4, rs=5, imm=32))


def test_lui_roundtrip():
    instr = Instruction(Op.LUI, rd=9, imm=-1)
    assert_same(instr, roundtrip(instr))


@pytest.mark.parametrize("op", [Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU])
def test_load_roundtrip(op):
    instr = Instruction(op, rd=3, rs=29, imm=-8)
    assert_same(instr, roundtrip(instr))


@pytest.mark.parametrize("op", [Op.SW, Op.SH, Op.SB])
def test_store_roundtrip(op):
    instr = Instruction(op, rt=3, rs=29, imm=100)
    assert_same(instr, roundtrip(instr))


@pytest.mark.parametrize("op", [Op.LWX, Op.LBX, Op.SWX, Op.SBX])
def test_indexed_memory_roundtrip(op):
    instr = Instruction(op, rd=3, rs=4, rt=5)
    assert_same(instr, roundtrip(instr))


@pytest.mark.parametrize("offset", [-32768 * 4, -4, 0, 4, 32767 * 4])
def test_branch_offset_roundtrip(offset):
    for op in (Op.BEQ, Op.BNE):
        instr = Instruction(op, rs=1, rt=2, imm=offset)
        assert_same(instr, roundtrip(instr))
    for op in (Op.BLEZ, Op.BGTZ, Op.BLTZ, Op.BGEZ):
        instr = Instruction(op, rs=1, imm=offset)
        assert_same(instr, roundtrip(instr))


def test_branch_offset_must_be_aligned():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.BEQ, rs=1, rt=2, imm=6))


def test_branch_offset_out_of_range():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.BEQ, rs=1, rt=2, imm=(1 << 20)))


def test_jump_roundtrip():
    for op in (Op.J, Op.JAL):
        instr = Instruction(op, imm=0x4000)
        assert_same(instr, roundtrip(instr))


def test_jump_target_alignment():
    with pytest.raises(EncodingError):
        encode(Instruction(Op.J, imm=0x4002))


def test_jr_jalr_syscall_halt_nop_roundtrip():
    for instr in (Instruction(Op.JR, rs=31),
                  Instruction(Op.JALR, rd=31, rs=9),
                  Instruction(Op.SYSCALL),
                  Instruction(Op.HALT),
                  Instruction(Op.NOP)):
        assert_same(instr, roundtrip(instr))


def test_word_zero_decodes_to_nop():
    assert decode(0).op is Op.NOP


def test_decode_rejects_unknown_funct():
    with pytest.raises(EncodingError):
        decode(0x0000003B)  # SPECIAL with unassigned funct


def test_decode_rejects_unknown_primary():
    with pytest.raises(EncodingError):
        decode(0x3F << 26)


def test_decode_rejects_nonword():
    with pytest.raises(EncodingError):
        decode(-1)
    with pytest.raises(EncodingError):
        decode(1 << 32)


def test_annotations_not_encoded():
    """Fill-unit annotations are microarchitectural: encoding strips
    them (they live in the trace cache's extra pre-decode bits)."""
    from repro.isa.instruction import ScaleAnnotation
    plain = Instruction(Op.ADD, rd=1, rs=2, rt=3)
    annotated = Instruction(Op.ADD, rd=1, rs=2, rt=3,
                            scale=ScaleAnnotation(src=9, shamt=2),
                            move_flag=True, reassociated=True)
    assert encode(plain) == encode(annotated)
