"""The central correctness property of the whole paper: a trace segment
transformed by the fill unit, executed fully on-path, leaves the
architectural state EXACTLY as the original instruction sequence would.

We generate random straight-line-with-branches programs, chop them into
segments exactly as the fill unit does, optimize with every combination
of passes, then execute original and transformed sequences on identical
machines and require identical register files and memories.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.machine.executor import execute_sequence
from repro.machine.memory import Memory
from repro.machine.state import ArchState
from repro.tracecache.cache import TraceCache, TraceCacheConfig

# Generated programs use registers 8-15 and a data region at DATA_BASE.
DATA_BASE = 0x10000
DATA_WORDS = 64

regs = st.integers(min_value=8, max_value=15)
small_imm = st.integers(min_value=-64, max_value=64)
shifts = st.integers(min_value=0, max_value=4)


@st.composite
def straightline_instr(draw):
    """One random instruction, memory accesses confined to the window."""
    kind = draw(st.sampled_from(
        ["addi", "add", "sub", "xor", "or", "sll", "move", "zero",
         "lw", "sw", "mult"]))
    if kind == "addi":
        return Instruction(Op.ADDI, rd=draw(regs), rs=draw(regs),
                           imm=draw(small_imm))
    if kind == "move":
        return Instruction(Op.ADDI, rd=draw(regs), rs=draw(regs), imm=0)
    if kind == "zero":
        return Instruction(Op.ADD, rd=draw(regs), rs=0, rt=draw(regs))
    if kind == "sll":
        return Instruction(Op.SLL, rd=draw(regs), rs=draw(regs),
                           imm=draw(shifts))
    if kind == "lw":
        slot = draw(st.integers(min_value=0, max_value=DATA_WORDS - 1))
        return Instruction(Op.LW, rd=draw(regs), rs=31, imm=4 * slot)
    if kind == "sw":
        slot = draw(st.integers(min_value=0, max_value=DATA_WORDS - 1))
        return Instruction(Op.SW, rt=draw(regs), rs=31, imm=4 * slot)
    if kind == "mult":
        return Instruction(Op.MULT, rd=draw(regs), rs=draw(regs),
                           rt=draw(regs))
    op = {"add": Op.ADD, "sub": Op.SUB, "xor": Op.XOR, "or": Op.OR}[kind]
    return Instruction(op, rd=draw(regs), rs=draw(regs), rt=draw(regs))


@st.composite
def trace_programs(draw):
    """A list of 4-24 instructions with occasional not-taken branches
    (pc-contiguous, so the whole list is one dynamic path)."""
    length = draw(st.integers(min_value=4, max_value=24))
    instrs = []
    for idx in range(length):
        if idx > 0 and idx < length - 1 and draw(st.booleans()) \
                and draw(st.booleans()):
            # a never-taken branch: r0 != r0+... use BNE r0, r0 (never)
            instr = Instruction(Op.BNE, rs=0, rt=0, imm=8)
        else:
            instr = draw(straightline_instr())
        instr.pc = 0x1000 + 4 * idx
        instrs.append(instr)
    seeds = draw(st.lists(st.integers(min_value=-1000, max_value=1000),
                          min_size=8, max_size=8))
    return instrs, seeds


def seed_machine(seeds):
    state = ArchState()
    for reg, value in zip(range(8, 16), seeds):
        state.write_reg(reg, value)
    state.write_reg(31, DATA_BASE)   # base register for generated lw/sw
    memory = Memory()
    for slot in range(DATA_WORDS):
        memory.store_word(DATA_BASE + 4 * slot, slot * 2654435761 % 997)
    return state, memory


def fake_records(instrs):
    """Wrap static instructions as committed records (all branches
    not-taken by construction)."""
    from repro.machine.tracing import CommittedInstr
    return [CommittedInstr(i, instr.pc, instr, instr.pc + 4)
            for i, instr in enumerate(instrs)]


OPT_SETS = [
    OptimizationConfig.only("moves"),
    OptimizationConfig.only("reassoc"),
    OptimizationConfig.only("scaled_adds"),
    OptimizationConfig.only("placement"),
    OptimizationConfig.only("cse"),
    OptimizationConfig.only("dead_code"),
    OptimizationConfig.all(),
    OptimizationConfig.extended(),
    OptimizationConfig(moves=True, reassoc=True,
                       reassoc_cross_flow_only=False),
]


@given(trace_programs(), st.sampled_from(OPT_SETS))
@settings(max_examples=200, deadline=None)
def test_optimized_segment_architecturally_equivalent(program, opts):
    instrs, seeds = program
    unit = FillUnit(
        FillUnitConfig(latency=1, optimizations=opts),
        TraceCache(TraceCacheConfig(num_sets=16, assoc=2)),
        BiasTable(64))
    collector = FillCollector(BiasTable(64))
    segments = []
    for record in fake_records(instrs):
        for candidate in collector.add(record):
            segments.append(unit.build_segment(candidate))
    for tail in collector.flush():
        segments.append(unit.build_segment(tail))

    ref_state, ref_mem = seed_machine(seeds)
    opt_state, opt_mem = seed_machine(seeds)
    execute_sequence(instrs, ref_state, ref_mem)
    for segment in segments:
        segment.validate()
        execute_sequence(segment.instrs, opt_state, opt_mem)

    assert opt_state.regs == ref_state.regs
    assert opt_mem.snapshot() == ref_mem.snapshot()


@given(trace_programs())
@settings(max_examples=100, deadline=None)
def test_baseline_segments_do_not_transform(program):
    instrs, _ = program
    unit = FillUnit(
        FillUnitConfig(latency=1, optimizations=OptimizationConfig.none()),
        TraceCache(TraceCacheConfig(num_sets=16, assoc=2)),
        BiasTable(64))
    collector = FillCollector(BiasTable(64))
    for record in fake_records(instrs):
        for candidate in collector.add(record):
            segment = unit.build_segment(candidate)
            assert not any(i.move_flag or i.reassociated or i.scale
                           for i in segment.instrs)
            assert segment.slots == list(range(len(segment)))
