"""Unit tests for the pluggable replacement-policy layer.

The policies are exercised directly (victim selection, metadata
transitions) and through :class:`SetAssocCache` (eviction accounting),
plus the run-level :class:`CaptureBackoff` profitability guard the
replay controller consults before keying a visit.
"""

from __future__ import annotations

import pytest

from repro.cache.policy import (
    HISTORY_PER_SET,
    POLICY_NAMES,
    RRPV_IMMEDIATE,
    RRPV_LONG,
    RRPV_MAX,
    SRRIPPolicy,
    TEMP_COLD,
    TEMP_HOT,
    TEMP_WARM,
    TRRIPPolicy,
    TrueLRU,
    make_policy,
)
from repro.cache.setassoc import SetAssocCache
from repro.core.replay import CaptureBackoff
from repro.errors import ConfigError


# -- registry -----------------------------------------------------------

def test_registry_names_and_factory():
    assert POLICY_NAMES == ("lru", "srrip", "trrip")
    for name, cls in (("lru", TrueLRU), ("srrip", SRRIPPolicy),
                      ("trrip", TRRIPPolicy)):
        policy = make_policy(name, 4)
        assert type(policy) is cls
        assert policy.name == name


def test_unknown_policy_raises_config_error():
    with pytest.raises(ConfigError, match="plru"):
        make_policy("plru", 4)


# -- TrueLRU ------------------------------------------------------------

def test_true_lru_victim_is_oldest_and_stateless():
    policy = TrueLRU(1)
    entries = {10: "a", 20: "b", 30: "c"}
    assert policy.victim(0, entries) == 10
    # Move-to-end (the container's hit behaviour) changes the victim.
    entries[10] = entries.pop(10)
    assert policy.victim(0, entries) == 20
    assert policy.state_digest(0) == ()


# -- SRRIP --------------------------------------------------------------

def test_srrip_insert_promote_and_age():
    policy = SRRIPPolicy(1)
    for key in (1, 2, 3):
        policy.on_insert(0, key)
    assert policy.state_digest(0) == tuple(
        (k, RRPV_LONG) for k in (1, 2, 3))
    policy.on_hit(0, 2)
    entries = {1: None, 2: None, 3: None}
    # No way is "distant" yet: the aging loop bumps every RRPV until
    # one is, then the first distant way in recency order is evicted.
    assert policy.victim(0, entries) == 1
    meta = dict(policy.state_digest(0))
    assert meta[1] == RRPV_MAX
    assert meta[2] == RRPV_IMMEDIATE + 1
    policy.on_evict(0, 1)
    assert 1 not in dict(policy.state_digest(0))


def test_srrip_prefers_distant_over_recency():
    policy = SRRIPPolicy(1)
    policy.on_insert(0, 1)
    policy.on_insert(0, 2)
    policy.on_hit(0, 1)           # 1 is near-immediate, 2 still long
    policy._meta[0][2] = RRPV_MAX
    # 1 is older in recency order but 2 is the distant way.
    assert policy.victim(0, {1: None, 2: None}) == 2


# -- TRRIP --------------------------------------------------------------

def test_trrip_temperature_from_history():
    policy = TRRIPPolicy(1)
    policy._history[0] = {1: 0, 2: 1, 3: 2}
    assert policy.temperature(0, 1) == TEMP_COLD
    assert policy.temperature(0, 2) == TEMP_WARM
    assert policy.temperature(0, 3) == TEMP_HOT
    assert policy.insertion_rrpv(0, 1) == RRPV_MAX
    assert policy.insertion_rrpv(0, 2) == RRPV_LONG
    assert policy.insertion_rrpv(0, 3) == RRPV_IMMEDIATE


def test_trrip_static_hints_cover_unseen_keys():
    policy = TRRIPPolicy(1)
    policy.set_static_hints({0x100: TEMP_HOT, 0x200: TEMP_COLD})
    # Trace-cache keys are (start_pc, path_key) tuples; the hint is
    # keyed by the start pc.
    assert policy.temperature(0, (0x100, ())) == TEMP_HOT
    assert policy.temperature(0, (0x200, (1,))) == TEMP_COLD
    # Unknown pc and non-tuple (line-tag) keys fall back to warm.
    assert policy.temperature(0, (0x300, ())) == TEMP_WARM
    assert policy.temperature(0, 0x100) == TEMP_WARM
    # Dynamic history outranks the static hint.
    policy._history[0][(0x100, ())] = 0
    assert policy.temperature(0, (0x100, ())) == TEMP_COLD


def test_trrip_eviction_feeds_history_and_reuse_saturates():
    policy = TRRIPPolicy(1)
    policy.on_insert(0, 7)
    for _ in range(10):
        policy.on_hit(0, 7)
    # The reuse counter saturates at the hot threshold so the replay
    # digest space stays finite.
    assert dict(policy.state_digest(0)[1])[7] == 2
    policy.on_evict(0, 7)
    assert policy._history[0][7] == 2
    # The next generation of key 7 inserts hot.
    policy.on_insert(0, 7)
    assert dict(policy.state_digest(0)[0])[7] == RRPV_IMMEDIATE


def test_trrip_history_is_fifo_bounded():
    policy = TRRIPPolicy(1)
    for key in range(HISTORY_PER_SET + 8):
        policy.on_insert(0, key)
        policy.on_evict(0, key)
    history = policy._history[0]
    assert len(history) == HISTORY_PER_SET
    assert next(iter(history)) == 8       # oldest eight fell off
    # Re-eviction refreshes the key's FIFO age, not just its count.
    policy.on_insert(0, 8)
    policy.on_evict(0, 8)
    assert next(iter(history)) == 9
    assert list(history)[-1] == 8


# -- container integration ---------------------------------------------

@pytest.mark.parametrize("name", POLICY_NAMES)
def test_setassoc_counts_capacity_evictions(name):
    # 2 sets x 2 ways of 16-byte lines; 3 lines mapping to set 0.
    cache = SetAssocCache(64, 2, 16, "t", policy=name)
    for addr in (0, 64, 128):
        cache.access(addr)
    assert cache.stats.evictions == 1
    assert cache.stats.misses == 3


def test_setassoc_srrip_differs_from_lru():
    lru = SetAssocCache(64, 2, 16, "lru", policy="lru")
    srrip = SetAssocCache(64, 2, 16, "srrip", policy="srrip")
    # Fill set 0, rehit the *older* line, then force an eviction: LRU
    # protects the rehit line, SRRIP additionally leaves it
    # near-immediate so the scan victimises the never-reused line.
    for cache in (lru, srrip):
        cache.access(0)
        cache.access(64)
        cache.access(0)
        cache.access(128)
    assert not lru.access(64)     # LRU evicted 64 (0 was rehit)
    assert not srrip.access(192)  # dummy to keep streams same length
    assert lru.stats.evictions >= 1
    assert srrip.stats.evictions >= 1


# -- capture back-off ---------------------------------------------------

def test_backoff_trips_below_threshold():
    guard = CaptureBackoff(threshold=0.5, window=4)
    for hit in (True, False, False, False):    # 25% < 50%
        guard.note(hit)
    assert guard.off
    # Once off, further outcomes are ignored...
    guard.note(True)
    assert guard.off and guard.visits == 0
    # ...until the next run resets the window.
    guard.reset()
    assert not guard.off


def test_backoff_stays_on_at_or_above_threshold():
    guard = CaptureBackoff(threshold=0.5, window=4)
    for hit in (True, True, False, False):     # exactly 50%
        guard.note(hit)
    assert not guard.off
    assert guard.visits == 0                   # window re-opened
    # A later bad window still trips it.
    for hit in (False, False, False, True):
        guard.note(hit)
    assert guard.off


def test_backoff_window_zero_disables_the_guard():
    guard = CaptureBackoff(threshold=0.99, window=0)
    for _ in range(64):
        guard.note(False)
    assert not guard.off and guard.visits == 0
