"""Pipeline timing model tests: end-to-end behaviour on small programs."""

import pytest

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig
from tests.helpers import run_asm

LOOP = """
main:
    li   $t9, 200
loop:
    sll  $t1, $t0, 2
    andi $t1, $t1, 252
    lwx  $t2, $t1, $gp
    add  $t3, $t3, $t2
    addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def simulate(source, config=None, opts=None):
    config = config or SimConfig.tiny(opts)
    _, trace = run_asm(source)
    return PipelineModel(config).run(trace, "test", "run"), trace


def test_cycles_and_instructions_positive():
    result, trace = simulate(LOOP)
    assert result.instructions == len(trace)
    assert 0 < result.cycles
    assert 0 < result.ipc <= 16


def test_ipc_bounded_by_machine_width():
    result, _ = simulate("main:\n" + "    addi $t0, $t1, 1\n" * 200 + "    halt\n")
    assert result.ipc <= 16


def test_deterministic():
    a, _ = simulate(LOOP)
    b, _ = simulate(LOOP)
    assert a.cycles == b.cycles
    assert a.mispredicts == b.mispredicts


def test_serial_chain_bounds_throughput():
    """A pure dependence chain cannot beat one instruction per cycle."""
    chain = "main:\n" + "    addi $t0, $t0, 1\n" * 300 + "    halt\n"
    result, _ = simulate(chain)
    assert result.ipc <= 1.1


def test_independent_work_runs_parallel():
    body = "".join(f"    addi $t{i}, $t{i}, 1\n" for i in range(8)) * 4
    source = ("main:\n    li $s0, 60\nouter:\n" + body
              + "    addi $s1, $s1, 1\n    blt $s1, $s0, outer\n    halt\n")
    serial = ("main:\n    li $s0, 60\nouter:\n"
              + "    addi $t0, $t0, 1\n" * 32
              + "    addi $s1, $s1, 1\n    blt $s1, $s0, outer\n    halt\n")
    parallel_r, _ = simulate(source)
    serial_r, _ = simulate(serial)
    assert parallel_r.ipc > 2.5 * serial_r.ipc


def test_trace_cache_warmup_supplies_instructions():
    result, _ = simulate(LOOP)
    assert result.tc_fetched_instrs > 0
    assert result.tc_fetched_instrs + result.ic_fetched_instrs == \
        result.instructions
    assert result.tc_instr_fraction > 0.5


def test_trace_cache_disabled_config():
    from dataclasses import replace
    config = replace(SimConfig.tiny(), trace_cache_enabled=False)
    result, _ = simulate(LOOP, config=config)
    assert result.tc_fetched_instrs == 0
    assert result.tc_lookups == 0


def test_trace_cache_helps_fetch_bound_code():
    """A wide-ILP loop is fetch-bandwidth bound: the instruction cache
    supplies one line (8 instructions) per cycle while the trace cache
    supplies a full 16-wide segment — the TC's raison d'etre."""
    from dataclasses import replace
    body = "".join(f"    addi $t{i % 8}, $s{i % 4}, {i}\n"
                   for i in range(14))
    source = ("main:\n    li $s7, 300\nloop:\n" + body
              + "    addi $s6, $s6, 1\n    blt $s6, $s7, loop\n    halt\n")
    with_tc, _ = simulate(source)
    without, _ = simulate(
        source, config=replace(SimConfig.tiny(), trace_cache_enabled=False))
    assert with_tc.ipc > 1.2 * without.ipc


def test_branches_counted():
    result, trace = simulate(LOOP)
    expected = sum(1 for r in trace if r.instr.is_cond_branch())
    assert result.cond_branches == expected


def test_biased_loop_trains_predictor():
    result, _ = simulate(LOOP)
    assert result.mispredict_rate < 0.1


def test_alternating_branch_mispredicts_initially():
    source = """
    main:
        li   $t9, 64
    loop:
        andi $t1, $t0, 1
        beq  $t1, $zero, even
        addi $t2, $t2, 1
    even:
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """
    result, _ = simulate(source)
    assert result.mispredicts > 0


def test_mispredicts_cost_cycles():
    predictable = """
    main:
        li   $t9, 200
    loop:
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """
    # an LCG-driven unpredictable branch
    random_branch = """
    main:
        li   $t9, 200
        li   $t5, 12345
    loop:
        mult $t5, $t5, $t6
        addi $t5, $t5, 13
        andi $t1, $t5, 1
        beq  $t1, $zero, skip
        addi $t2, $t2, 1
    skip:
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """
    good, _ = simulate(predictable)
    bad, _ = simulate(random_branch)
    assert bad.mispredict_rate > good.mispredict_rate


def test_moves_eliminated_only_with_optimization():
    source = """
    main:
        li   $t9, 100
    loop:
        move $t1, $t0
        add  $t2, $t1, $t1
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """
    base, _ = simulate(source)
    opt, _ = simulate(source, opts=OptimizationConfig.only("moves"))
    assert base.moves_eliminated == 0
    assert opt.moves_eliminated > 0
    assert opt.ipc >= base.ipc


def test_coverage_counted_only_for_tc_instructions():
    result, _ = simulate(LOOP, opts=OptimizationConfig.all())
    assert result.coverage.any_opt <= result.tc_fetched_instrs


def test_promotion_happens_on_long_loops():
    result, _ = simulate(LOOP)   # tiny config promotes after 8
    assert result.promoted_fetches > 0


def test_serializing_instruction_present():
    source = """
    main:
        li $v0, 1
        li $a0, 7
        syscall
        addi $t0, $t0, 1
        halt
    """
    result, _ = simulate(source)
    assert result.cycles > 0     # syscall path executes without hanging


def test_bypass_stat_populated():
    result, _ = simulate(LOOP)
    assert result.executed_with_sources > 0
    assert 0 <= result.bypass_delayed <= result.executed_with_sources


def test_store_load_program_timing_sane():
    source = """
    main:
        li   $t9, 50
    loop:
        sw   $t0, 0($sp)
        lw   $t1, 0($sp)
        addi $t0, $t0, 1
        blt  $t0, $t9, loop
        halt
    """
    result, _ = simulate(source)
    assert result.cycles >= 50          # the st->ld chain serializes
    assert result.forwarded_loads > 0


def test_summary_string():
    result, _ = simulate(LOOP)
    text = result.summary()
    assert "IPC" in text and "test" in text
