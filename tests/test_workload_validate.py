"""Workload validation module tests."""

import pytest

from repro.machine.executor import Executor
from repro import workloads
from repro.workloads.validate import (StaticFingerprint,
                                      ValidationReport,
                                      static_fingerprint,
                                      validate_benchmark)


@pytest.fixture(scope="module")
def m88_report():
    return validate_benchmark("m88ksim", scale=0.15)


def test_static_fingerprint_fields(m88_report):
    static = m88_report.static
    assert static.instructions > 2000
    assert 0 < static.moves < 0.3
    assert 0 < static.chainable_addi < 0.5
    assert 0 < static.cond_branches < 0.4
    assert static.calls > 0


def test_coverage_vs_target(m88_report):
    ratios = m88_report.coverage_ratios
    assert ratios["total"] is not None
    assert 0.3 < ratios["total"] < 3.0
    # m88ksim's scaled-add target (1.2%) is noise-level for our kernel;
    # the real categories (moves, reassoc, total) must sit in the band.
    assert m88_report.within(factor=3.0, floor_pct=1.5)


def test_improvement_positive(m88_report):
    assert m88_report.improvement > 5.0


def test_render(m88_report):
    text = m88_report.render()
    assert "m88ksim" in text
    assert "measured" in text and "target" in text


def test_within_factor_logic():
    report = ValidationReport(
        benchmark="x",
        static=StaticFingerprint(1000, 0, 0, 0, 0, 0, 0, 0, 0),
        coverage={"moves": 6.0, "reassoc": 0.0, "scaled": 4.0,
                  "total": 10.0},
        target={"moves": 6.0, "reassoc": 0.5, "scaled": 4.0,
                "total": 10.0},
        improvement=10.0)
    # reassoc target is under the noise floor: exempt despite 0 measured
    assert report.within(factor=2.0, floor_pct=1.0)
    report.coverage["moves"] = 0.5     # 12x off a real target
    assert not report.within(factor=2.0, floor_pct=1.0)


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        validate_benchmark("quake")


def test_reusing_a_trace():
    trace = Executor(workloads.build("tex", 0.1)).run()
    report = validate_benchmark("tex", trace=trace)
    assert report.static.instructions == len(trace)


def test_zero_target_ratio_is_none():
    report = ValidationReport(
        benchmark="x",
        static=StaticFingerprint(10, 0, 0, 0, 0, 0, 0, 0, 0),
        coverage={"moves": 1.0, "reassoc": 1.0, "scaled": 1.0,
                  "total": 1.0},
        target={"moves": 0.0, "reassoc": 1.0, "scaled": 1.0,
                "total": 1.0},
        improvement=0.0)
    assert report.coverage_ratios["moves"] is None
