"""Static layer of the replay-soundness self-audit: state-model
extraction, digest-coverage lint, determinism lint, seeded holes."""

from __future__ import annotations

import importlib

from repro.analysis.selfcheck import (
    DIGEST_SURFACES,
    MACHINE_STATE,
    all_surfaces,
    extract_attr_cells,
    extract_component,
    extract_state_model,
    run_coverage,
    run_determinism,
    scan_class_iteration,
    scan_module_hazards,
    seed_static_holes,
)
from repro.analysis.selfcheck.report import PHANTOM_FIELD


def _spec(cls):
    return next(s for s in DIGEST_SURFACES if s.cls == cls)


# -- extraction ---------------------------------------------------------

def test_extracts_functional_units_digest_surface():
    cm = extract_component(_spec("FunctionalUnits"))
    assert "_busy" in cm.fields
    assert cm.fields["_busy"].classification == "timing"
    assert set(cm.covered_timing_fields()) >= {"_busy", "_floor"}
    # reserve() mutates both; the closure ties mutation to the step
    # path, not to __init__.
    assert "reserve" in cm.fields["_busy"].step_mutators


def test_hint_comment_drives_counter_classification():
    cm = extract_component(_spec("BypassNetwork"))
    field = cm.fields["crossings"]
    assert field.hint == "counter"
    assert field.classification == "counter"


def test_memory_scheduler_counters_and_timing_split():
    cm = extract_component(_spec("MemoryScheduler"))
    for name in ("loads", "stores", "forwarded_loads", "blocked_loads"):
        assert cm.fields[name].classification == "counter"
    assert "_forward" in cm.covered_timing_fields()


def test_attr_cells_statically_resolved():
    cells = extract_attr_cells()
    assert len(cells) == 15
    assert "memsched.loads" in cells
    assert "bypass.crossings" in cells
    assert "hierarchy.l1d.stats.accesses" in cells
    assert "hierarchy.l2.stats.hits" in cells
    assert "hierarchy.l1d.stats.evictions" in cells
    assert "hierarchy.l2.stats.evictions" in cells
    # The L1I runs live on both paths, so its counters must *not* be
    # delta cells.
    assert not any(cell.startswith("hierarchy.l1i") for cell in cells)


def test_state_model_maps_mutations_to_stages():
    sm = extract_state_model(MACHINE_STATE)
    assert "reg_ready" in sm.declared
    assert "retire_cycles" in sm.mutations
    assert any("fetch" in site for site in sm.mutations["fetch_ready"])


# -- coverage lint ------------------------------------------------------

def test_current_tree_has_no_coverage_findings():
    models = [extract_component(s) for s in all_surfaces()]
    findings = run_coverage(models, extract_state_model(MACHINE_STATE),
                            extract_attr_cells())
    assert findings == []


def test_seeded_static_holes_all_caught():
    """Every digest-covered timing field, when dropped from its
    readers, must produce a digest-hole error — and so must a phantom
    mutated field added outside the model."""
    models = [extract_component(s) for s in all_surfaces()]
    holes = seed_static_holes(models, extract_attr_cells())
    assert holes, "no digest surfaces seeded"
    assert all(h.caught for h in holes)
    assert any(h.field == PHANTOM_FIELD for h in holes)


# -- determinism lint ---------------------------------------------------

def test_current_tree_has_no_determinism_findings():
    assert run_determinism() == []


HAZARD_SRC = '''\
import random
import time


def pick(vals):
    random.shuffle(vals)
    return id(vals)
'''

ITER_SRC = '''\
class Foo:
    def __init__(self) -> None:
        self._bag = {1, 2}
        self._map = {1: 2}

    def digest(self):
        safe = sum(v for v in self._bag)
        out = []
        for item in self._bag:
            out.append(item)
        for key in self._map:
            out.append(key)
        return safe, tuple(sorted(self._bag)), tuple(out)
'''


def _plant(tmp_path, monkeypatch, name, src):
    (tmp_path / f"{name}.py").write_text(src)
    monkeypatch.syspath_prepend(str(tmp_path))
    importlib.invalidate_caches()


def test_module_hazards_flag_imports_and_id(tmp_path, monkeypatch):
    _plant(tmp_path, monkeypatch, "sc_hazmod", HAZARD_SRC)
    rules = {f.rule for f in scan_module_hazards("sc_hazmod")}
    assert "nondeterministic-import" in rules
    assert "id-call" in rules


def test_iteration_scan_separates_safe_and_hazardous(tmp_path,
                                                     monkeypatch):
    _plant(tmp_path, monkeypatch, "sc_itermod", ITER_SRC)
    findings = scan_class_iteration("sc_itermod", "Foo", ("digest",))
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    # The bare set loop is an error; the dict loop a warning; the
    # sum()-wrapped and sorted()-wrapped reads are order-insensitive
    # and must not be flagged.
    assert len(by_rule.pop("unordered-iteration")) == 1
    assert len(by_rule.pop("dict-iteration")) == 1
    assert by_rule == {}
