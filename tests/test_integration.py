"""End-to-end integration tests: the paper's qualitative claims hold on
the real workload suite (reduced scale to keep the suite fast)."""

import pytest

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.experiment import ExperimentRunner
from repro import workloads


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.25,
                            benchmarks=["compress", "m88ksim", "go",
                                        "li", "ijpeg"])


def test_combined_optimizations_improve_every_benchmark(runner):
    for bench in runner.benchmarks:
        imp = runner.improvement(bench, OptimizationConfig.all())
        assert imp > 0, bench


def test_each_optimization_alone_does_not_regress_mean(runner):
    from repro.analysis.stats import arithmetic_mean
    for opt in ("moves", "reassoc", "scaled_adds", "placement"):
        imps = [runner.improvement(b, OptimizationConfig.only(opt))
                for b in runner.benchmarks]
        assert arithmetic_mean(imps) > -0.5, opt


def test_combined_beats_each_single_opt_on_average(runner):
    from repro.analysis.stats import arithmetic_mean
    combined = arithmetic_mean(
        [runner.improvement(b, OptimizationConfig.all())
         for b in runner.benchmarks])
    for opt in ("moves", "reassoc", "scaled_adds", "placement"):
        single = arithmetic_mean(
            [runner.improvement(b, OptimizationConfig.only(opt))
             for b in runner.benchmarks])
        assert combined > single, opt


def test_m88ksim_leads_reassociation(runner):
    """Figure 4's headline: m88ksim towers over the others."""
    imps = {b: runner.improvement(b, OptimizationConfig.only("reassoc"))
            for b in runner.benchmarks}
    assert imps["m88ksim"] == max(imps.values())
    assert imps["m88ksim"] > 3 * max(
        v for b, v in imps.items() if b != "m88ksim")


def test_fill_latency_negligible(runner):
    """Figure 8's second claim: 1/5/10-cycle fill pipelines perform
    within a few percent of each other."""
    for bench in ("compress", "m88ksim"):
        ipcs = [runner.run(bench, OptimizationConfig.all(),
                           fill_latency=lat).ipc
                for lat in (1, 5, 10)]
        spread = (max(ipcs) - min(ipcs)) / min(ipcs)
        assert spread < 0.05, (bench, ipcs)


def test_placement_reduces_bypass_delay_fraction(runner):
    """Figure 7's claim, on the placement-friendly benchmark."""
    base = runner.baseline("ijpeg")
    placed = runner.run("ijpeg", OptimizationConfig.only("placement"))
    assert placed.bypass_delayed_fraction < base.bypass_delayed_fraction


def test_optimizations_never_change_architectural_results():
    """The optimized machine replays the same committed trace — and the
    functional outputs (program checksums) are by construction identical.
    Verify the fill unit's transformed segments also re-execute to the
    same result on the real workloads, segment by segment."""
    from repro.branch.bias import BiasTable
    from repro.fillunit.collector import FillCollector
    from repro.fillunit.unit import FillUnit, FillUnitConfig
    from repro.machine.executor import Executor, execute_sequence
    from repro.machine.memory import Memory
    from repro.machine.state import ArchState
    from repro.tracecache.cache import TraceCache, TraceCacheConfig

    program = workloads.build("m88ksim", scale=0.05)
    trace = Executor(program).run()
    bias = BiasTable(64, threshold=8)
    unit = FillUnit(
        FillUnitConfig(latency=1, optimizations=OptimizationConfig.all()),
        TraceCache(TraceCacheConfig(num_sets=64, assoc=4)), bias)
    collector = FillCollector(bias)
    checked = 0
    for record in trace.records[:4000]:
        if record.instr.is_cond_branch():
            bias.record(record.pc, record.taken)
        for candidate in collector.add(record):
            segment = unit.build_segment(candidate)
            # Re-execute both sequences from identical synthetic state
            # (word-aligned register seeds keep memory ops legal).
            ref_state, opt_state = ArchState(), ArchState()
            for reg in range(1, 32):
                ref_state.write_reg(reg, 0x4000 + reg * 64)
                opt_state.write_reg(reg, 0x4000 + reg * 64)
            mem_a, mem_b = Memory(), Memory()
            execute_sequence([r.instr for r in candidate.records],
                             ref_state, mem_a)
            execute_sequence(segment.instrs, opt_state, mem_b)
            assert ref_state.regs == opt_state.regs
            assert mem_a.snapshot() == mem_b.snapshot()
            checked += 1
    assert checked > 50


def test_simulator_facade_end_to_end():
    from repro import SimConfig, Simulator
    program = workloads.build("compress", scale=0.1)
    simulator = Simulator(SimConfig.paper())
    result = simulator.run(program)
    assert result.benchmark == "compress"
    assert result.ipc > 0


def test_simulate_one_shot():
    from repro import simulate
    result = simulate(workloads.build("tex", scale=0.05),
                      SimConfig.tiny())
    assert result.instructions > 0


def test_table2_coverage_orders_like_paper(runner):
    """The reproduction's optimization-coverage ranking mirrors the
    paper's: m88ksim has the most transformed instructions; go leads
    scaled adds; li leads moves within this subset."""
    covs = {}
    for bench in runner.benchmarks:
        result = runner.run(bench, OptimizationConfig.all())
        covs[bench] = result.coverage.as_percentages(result.instructions)
    assert covs["m88ksim"]["total"] == max(c["total"] for c in covs.values())
    assert covs["m88ksim"]["reassoc"] == max(c["reassoc"]
                                             for c in covs.values())
    assert covs["go"]["scaled"] == max(c["scaled"] for c in covs.values())
    # move-idiom density: the pointer-chasing interpreter (li) far
    # above the array codes (go/ijpeg), as in the paper's Table 2.
    assert covs["li"]["moves"] > 3 * covs["go"]["moves"]
    assert covs["li"]["moves"] > 3 * covs["ijpeg"]["moves"]
