"""Host-time profiler: accumulation, engine attachment, reporting."""

import json

from repro import workloads
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine.executor import Executor
from repro.telemetry.hostprof import HOSTPROF_SCHEMA_VERSION, HostProfiler


def test_add_and_scope_accumulate():
    prof = HostProfiler()
    prof.add("stage.fetch", 0.25)
    prof.add("stage.fetch", 0.75, calls=3)
    with prof.scope("io.load"):
        pass
    calls, seconds = prof.totals["stage.fetch"]
    assert calls == 4 and seconds == 1.0
    assert prof.totals["io.load"][0] == 1
    assert prof.total_seconds("stage.") == 1.0


def test_shares_normalize():
    prof = HostProfiler()
    prof.add("stage.a", 3.0)
    prof.add("stage.b", 1.0)
    prof.add("fillpass.x", 9.0)          # different prefix: excluded
    shares = prof.shares("stage.")
    assert shares == {"stage.a": 0.75, "stage.b": 0.25}
    assert prof.shares("nothing.") == {}


def test_to_dict_and_render():
    prof = HostProfiler()
    prof.add("stage.a", 0.5, calls=10)
    payload = prof.to_dict()
    assert payload["schema"] == HOSTPROF_SCHEMA_VERSION
    assert payload["scopes"]["stage.a"] == {"calls": 10, "seconds": 0.5}
    json.dumps(payload)                  # JSON-safe
    text = prof.render("title")
    assert "title" in text and "stage.a" in text and "100.0%" in text


def test_attach_profiles_stages_and_passes():
    program = workloads.build("compress", 0.1)
    trace = Executor(program).run()
    config = SimConfig.paper(OptimizationConfig.all())

    plain = Engine(config).run(trace, "compress")

    engine = Engine(config)
    prof = HostProfiler()
    prof.attach(engine)
    profiled = engine.run(trace, "compress")

    # Wrappers only time; the model is bit-for-bit unchanged.
    assert profiled.cycles == plain.cycles
    assert profiled.instructions == plain.instructions
    assert profiled.telemetry == plain.telemetry

    stage_scopes = {s for s in prof.totals if s.startswith("stage.")}
    assert stage_scopes == {"stage.fetch", "stage.rename",
                            "stage.issue", "stage.execute",
                            "stage.retire", "stage.fill"}
    pass_scopes = {s for s in prof.totals if s.startswith("fillpass.")}
    assert pass_scopes == {"fillpass.moves", "fillpass.reassoc",
                           "fillpass.scaled_adds",
                           "fillpass.placement"}
    # Every instruction goes through every stage.
    for scope in stage_scopes:
        assert prof.totals[scope][0] >= profiled.instructions
    shares = prof.shares("stage.")
    assert abs(sum(shares.values()) - 1.0) < 1e-9


def test_hostprof_report_tool_roundtrip(tmp_path):
    import importlib.util
    from pathlib import Path
    repo = Path(__file__).resolve().parents[1]
    spec = importlib.util.spec_from_file_location(
        "hostprof_report", repo / "tools" / "hostprof_report.py")
    tool = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(tool)

    prof = HostProfiler()
    prof.add("stage.fetch", 1.5, calls=100)
    path = tmp_path / "prof.json"
    path.write_text(json.dumps(prof.to_dict()))
    loaded = tool.load_profile(str(path))
    assert loaded.totals == prof.totals

    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": 99, "scopes": {}}')
    try:
        tool.load_profile(str(bad))
    except ValueError as exc:
        assert "schema" in str(exc)
    else:
        raise AssertionError("schema mismatch must raise")
