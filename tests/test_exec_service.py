"""The execution service: determinism, caching, pooling, retry.

The determinism contract the figures rest on: a job produces the same
cycle count and the same telemetry counter snapshot whether it runs
inline, through the multiprocess pool, or is replayed from the on-disk
cache.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimConfig
from repro.exec.fingerprint import job_fingerprint
from repro.exec.grid import JobSpec, expand, opt_variant
from repro.exec.pool import WorkerPool, derive_seed, run_job_payload
from repro.exec.service import ExecutionService
from repro.fillunit.opts.base import OptimizationConfig
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EXEC_JOB_CACHED,
    EXEC_JOB_FINISHED,
    EXEC_JOB_STARTED,
    EXEC_WORKER_RETRY,
)

SCALE = 0.05
BENCHMARKS = ("compress", "li")


def _jobs():
    return expand(BENCHMARKS,
                  [opt_variant(OptimizationConfig.none()),
                   opt_variant(OptimizationConfig.all())])


@pytest.fixture(scope="module")
def serial_results():
    service = ExecutionService(scale=SCALE, jobs=1)
    return service.run_many(_jobs())


def _assert_identical(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.benchmark == b.benchmark
        assert a.config_label == b.config_label
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.telemetry == b.telemetry


def test_pool_matches_serial(serial_results):
    pooled = ExecutionService(scale=SCALE, jobs=4)
    _assert_identical(serial_results, pooled.run_many(_jobs()))
    assert pooled.stats["simulated"] == len(_jobs())


def test_cache_hit_matches_serial(serial_results, tmp_path):
    writer = ExecutionService(scale=SCALE, jobs=1, cache_dir=tmp_path)
    writer.run_many(_jobs())
    reader = ExecutionService(scale=SCALE, jobs=1, cache_dir=tmp_path)
    replayed = reader.run_many(_jobs())
    _assert_identical(serial_results, replayed)
    assert reader.stats == {"memo": 0, "disk": len(_jobs()),
                            "simulated": 0}
    assert reader.cache_hit_rate == 1.0


def test_worker_path_matches_inline(serial_results):
    service = ExecutionService(scale=SCALE, jobs=1)
    job = _jobs()[0]
    via_worker = service.run_payload_inline(job)
    assert via_worker.cycles == serial_results[0].cycles
    assert via_worker.telemetry == serial_results[0].telemetry


def test_memo_serves_repeats_without_resimulating():
    service = ExecutionService(scale=SCALE, jobs=1)
    job = JobSpec("compress", SimConfig.paper(), "baseline")
    first = service.run(job)
    second = service.run(job)
    assert second is first
    assert service.stats == {"memo": 1, "disk": 0, "simulated": 1}


def test_duplicate_jobs_in_batch_simulate_once():
    service = ExecutionService(scale=SCALE, jobs=1)
    job = JobSpec("compress", SimConfig.paper(), "baseline")
    twin = JobSpec("compress", SimConfig.paper(), "also-baseline")
    results = service.run_many([job, twin])
    assert service.stats["simulated"] == 1
    assert results[0].cycles == results[1].cycles
    # labels stay per-job even though the machine is shared
    assert results[0].config_label == "baseline"
    assert results[1].config_label == "also-baseline"


def test_progress_events(tmp_path):
    telemetry = Telemetry(attribution=False)
    sink = telemetry.attach_memory(
        kinds=(EXEC_JOB_STARTED, EXEC_JOB_FINISHED, EXEC_JOB_CACHED))
    service = ExecutionService(scale=SCALE, jobs=1, cache_dir=tmp_path,
                               telemetry=telemetry)
    job = JobSpec("compress", SimConfig.paper(), "baseline")
    service.run(job)
    service.run(job)
    started = sink.by_kind(EXEC_JOB_STARTED)
    finished = sink.by_kind(EXEC_JOB_FINISHED)
    cached = sink.by_kind(EXEC_JOB_CACHED)
    assert len(started) == 1 and len(finished) == 1 and len(cached) == 1
    assert started[0].data["benchmark"] == "compress"
    assert finished[0].data["cycles"] > 0
    assert cached[0].data["source"] == "memo"
    # a fresh service hits the disk tier
    other = ExecutionService(scale=SCALE, jobs=1, cache_dir=tmp_path,
                             telemetry=telemetry)
    other.run(job)
    assert sink.by_kind(EXEC_JOB_CACHED)[-1].data["source"] == "disk"


def test_derive_seed_is_deterministic():
    fp = job_fingerprint(SimConfig.paper(), "compress", SCALE)
    assert derive_seed(fp) == derive_seed(fp)
    assert derive_seed(fp) == int(fp[:16], 16)


def test_pool_retries_crashed_worker(tmp_path):
    config = SimConfig.paper()
    fp = job_fingerprint(config, "compress", SCALE)
    marker = tmp_path / "crash-once"
    payload = {"benchmark": "compress", "scale": SCALE,
               "config": config.to_dict(), "label": "baseline",
               "fingerprint": fp, "crash_once_path": str(marker)}
    telemetry = Telemetry(attribution=False)
    sink = telemetry.attach_memory(kinds=(EXEC_WORKER_RETRY,))
    pool = WorkerPool(2, events=telemetry.events)
    out = pool.run([payload])
    assert marker.exists()
    assert pool.retry_count >= 1
    assert len(sink.events) == pool.retry_count
    assert out[0]["fingerprint"] == fp
    # the retried job produced the same result a clean worker does
    clean = run_job_payload({k: v for k, v in payload.items()
                             if k != "crash_once_path"})
    assert out[0]["result"] == clean["result"]


def test_pool_gives_up_after_retries(tmp_path):
    # a payload the worker cannot satisfy: unknown benchmark
    config = SimConfig.paper()
    payload = {"benchmark": "no-such-benchmark", "scale": SCALE,
               "config": config.to_dict(), "label": "baseline",
               "fingerprint": "ff" * 32}
    pool = WorkerPool(2, retries=1)
    with pytest.raises(RuntimeError, match="failed after"):
        pool.run([payload])
    assert pool.retry_count == 1
