"""Per-benchmark fingerprint tests: each synthetic stand-in must carry
the static idiom signature its Table 2 profile requires. These run on
the committed stream (no timing model), so they are fast and pin the
workload generators against accidental drift during tuning.
"""

import pytest

from repro import workloads
from repro.isa.instruction import move_source
from repro.isa.opcodes import Op
from repro.machine.executor import Executor

SCALE = 0.15
_CACHE: dict = {}


def mix(name):
    if name not in _CACHE:
        trace = Executor(workloads.build(name, SCALE)).run()
        total = len(trace)
        moves = sum(1 for r in trace if move_source(r.instr) is not None)
        short_shifts = sum(1 for r in trace
                           if r.instr.op is Op.SLL
                           and 1 <= (r.instr.imm or 0) <= 3)
        addi_chainable = sum(1 for r in trace
                             if r.instr.op is Op.ADDI
                             and r.instr.rd not in (0, r.instr.rs))
        loads = sum(1 for r in trace if r.instr.is_load())
        calls = sum(1 for r in trace if r.instr.is_call())
        indirect = sum(1 for r in trace
                       if r.instr.is_indirect() and not r.instr.is_return())
        _CACHE[name] = {
            "total": total,
            "moves": moves / total,
            "short_shifts": short_shifts / total,
            "addi": addi_chainable / total,
            "loads": loads / total,
            "calls": calls / total,
            "indirect": indirect / total,
        }
    return _CACHE[name]


# -- per-category leaders (Table 2's structure) ---------------------------

def test_move_leaders():
    movers = sorted(workloads.names(), key=lambda n: mix(n)["moves"],
                    reverse=True)
    assert {"li", "vortex", "m88ksim"} & set(movers[:5])
    # the array codes sit at the bottom
    assert {"go", "tex"} & set(movers[-5:])


def test_shift_leaders():
    shifty = sorted(workloads.names(),
                    key=lambda n: mix(n)["short_shifts"], reverse=True)
    assert {"go", "tex"} & set(shifty[:4])
    assert mix("pgp")["short_shifts"] < 0.02


def test_addi_chain_leaders():
    chainy = sorted(workloads.names(), key=lambda n: mix(n)["addi"],
                    reverse=True)
    assert "m88ksim" in chainy[:4]
    assert "gnuchess" in chainy[:6]


def test_interpreters_have_indirect_dispatch():
    for name in ("li", "perl", "python"):
        assert mix(name)["indirect"] > 0.002, name
    for name in ("pgp", "go", "tex"):
        assert mix(name)["indirect"] == 0.0, name


def test_every_benchmark_calls_functions():
    for name in workloads.names():
        assert mix(name)["calls"] > 0.001, name


def test_every_benchmark_touches_memory():
    for name in workloads.names():
        assert mix(name)["loads"] > 0.02, name


def test_pgp_is_memory_light():
    """Cipher rounds live in registers."""
    heavy = [mix(n)["loads"] for n in ("li", "vortex", "tex")]
    assert mix("pgp")["loads"] < min(heavy)


@pytest.mark.parametrize("name", workloads.names())
def test_fingerprint_sane(name):
    data = mix(name)
    assert data["total"] > 1500
    assert 0 <= data["moves"] < 0.35
    assert 0 <= data["short_shifts"] < 0.30
