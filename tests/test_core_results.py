"""SimResult property tests."""

import pytest

from repro.core.results import OptCoverage, SimResult


def make(instructions=1000, cycles=500, **kw):
    return SimResult(benchmark="b", config_label="c",
                     instructions=instructions, cycles=cycles, **kw)


def test_ipc():
    assert make().ipc == 2.0
    assert make(cycles=0).ipc == 0.0


def test_tc_rates():
    result = make(tc_lookups=100, tc_hits=80, tc_fetched_instrs=900)
    assert result.tc_hit_rate == pytest.approx(0.8)
    assert result.tc_instr_fraction == pytest.approx(0.9)
    empty = make(instructions=0)
    assert empty.tc_instr_fraction == 0.0
    assert empty.tc_hit_rate == 0.0


def test_bypass_fraction():
    result = make(bypass_delayed=250)
    assert result.bypass_delayed_fraction == pytest.approx(0.25)


def test_mispredict_rate():
    result = make(cond_branches=200, mispredicts=10)
    assert result.mispredict_rate == pytest.approx(0.05)
    assert make().mispredict_rate == 0.0


def test_improvement_over():
    base = make(cycles=1000)    # IPC 1.0
    better = make(cycles=800)   # IPC 1.25
    assert better.improvement_over(base) == pytest.approx(25.0)
    zero = make(cycles=0)
    assert better.improvement_over(zero) == 0.0


def test_coverage_percentages():
    cov = OptCoverage(moves=60, reassoc=30, scaled=10, any_opt=90)
    pct = cov.as_percentages(1000)
    assert pct == {"moves": 6.0, "reassoc": 3.0, "scaled": 1.0,
                   "any_opt": 9.0, "total": 9.0}
    # `total` is the legacy alias for `any_opt`
    assert pct["total"] == pct["any_opt"]


def test_coverage_percentages_zero_instructions():
    cov = OptCoverage(moves=60, reassoc=30, scaled=10, any_opt=90)
    zero = cov.as_percentages(0)
    # identical key set to the nonzero case, all values 0.0
    assert zero == {"moves": 0.0, "reassoc": 0.0, "scaled": 0.0,
                    "any_opt": 0.0, "total": 0.0}
    assert set(zero) == set(cov.as_percentages(1000))


def test_summary_fields():
    text = make().summary()
    for token in ("IPC", "cycles", "instrs", "tc=", "bypass="):
        assert token in text
