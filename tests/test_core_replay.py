"""Unit tests for the replay controller's store and policy pieces."""

from __future__ import annotations

import dataclasses

from repro import workloads
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.pipeline import PipelineModel
from repro.core.replay import (
    _COLD_MISSES,
    _COLD_MISSES_FAST,
    _COLD_RATIO,
    _MIN_REPLAY_CONSUMED,
    _PROBE_MAX,
    _PROBE_MIN,
    _PRUNE_EVERY,
    TimingMemo,
    VisitRecord,
    _is_cold,
)
from repro.core.stages.base import FetchGroup, MachineState
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine import run_program
from repro.telemetry import Telemetry


def _record(tag):
    """A minimal but structurally valid record (``approx_bytes`` walks
    the dataclass fields)."""
    return VisitRecord(
        retire=(tag,), regs=((1, ("a", 1, None)),),
        rename_post=("idle",), retire_post=("idle",),
        checkpoints_post=((), 0), fus_post=((), ()), rs_post=(),
        memsched_delta=(None, ()), cache_posts=(), attr_deltas=(),
        counter_deltas=(), fetch_post=(1, 0, 0))


# -- TimingMemo ---------------------------------------------------------

def test_memo_store_get_len():
    memo = TimingMemo(4)
    assert memo.get(("k", 1)) is None
    assert memo.store(("k", 1), _record(1)) == 0
    assert memo.get(("k", 1)) == _record(1)
    assert len(memo) == 1


def test_memo_fifo_eviction_at_capacity():
    memo = TimingMemo(2)
    assert memo.store(("a",), _record("a")) == 0
    assert memo.store(("b",), _record("b")) == 0
    assert memo.store(("c",), _record("c")) == 1    # evicts ("a",)
    assert memo.get(("a",)) is None
    assert memo.get(("b",)) == _record("b")
    assert memo.get(("c",)) == _record("c")


def test_memo_overwrite_does_not_evict():
    memo = TimingMemo(2)
    memo.store(("a",), _record(1))
    memo.store(("b",), _record(2))
    assert memo.store(("a",), _record(3)) == 0
    assert memo.get(("a",)) == _record(3)
    assert memo.get(("b",)) == _record(2)


def test_memo_invalidate():
    memo = TimingMemo(2)
    memo.store(("a",), _record(1))
    memo.invalidate(("a",))
    memo.invalidate(("never",))     # absent key: no-op
    assert memo.get(("a",)) is None
    assert len(memo) == 0


def test_memo_approx_bytes_sampled():
    memo = TimingMemo(4096)
    for i in range(500):
        memo.store((i,), _record(i))
    estimate = memo.approx_bytes()
    assert estimate > 0
    # The estimate extrapolates a bounded sample; it must scale with
    # the entry count, not with sample cost.
    memo2 = TimingMemo(4096)
    for i in range(50):
        memo2.store((i,), _record(i))
    assert estimate > memo2.approx_bytes()


# -- cold-segment policy ------------------------------------------------

def test_cold_needs_fast_threshold_without_hits():
    stats = [0, _COLD_MISSES_FAST - 1, 0, _PROBE_MIN]
    assert not _is_cold(stats)
    stats[1] = _COLD_MISSES_FAST
    assert _is_cold(stats)


def test_cold_with_hits_uses_lifetime_test():
    # Any hit at all moves the segment to the slow lifetime criterion.
    stats = [1, _COLD_MISSES - 1, 0, _PROBE_MIN]
    assert not _is_cold(stats)
    stats[1] = _COLD_MISSES
    assert _is_cold(stats)
    # A healthy hit rate is never cold, whatever the miss count.
    assert not _is_cold([_COLD_MISSES, _COLD_MISSES * _COLD_RATIO // 2,
                         0, _PROBE_MIN])


def test_adaptive_bypass_engages_on_compress():
    """compress's hash-table segments never produce repeatable keys;
    the controller must stop keying them (bypass > 0) while still
    replaying the hot loop segments (hit > 0)."""
    trace = run_program(workloads.build("compress", scale=0.2))
    config = SimConfig.tiny(OptimizationConfig.all())
    result = PipelineModel(config).run(trace, benchmark="compress",
                                       label="memo-on")
    tel = result.telemetry
    assert tel.get("engine.replay.hit", 0) > 0
    assert tel.get("engine.replay.bypass", 0) > 0


# -- run eligibility ----------------------------------------------------

def test_attribution_session_forces_slow_path():
    """Cycle attribution observes every instruction, so a session with
    attribution on must never replay — and still match bit-for-bit."""
    trace = run_program(workloads.build("li", scale=0.2))
    config = SimConfig.tiny(OptimizationConfig.all())
    session = Telemetry(attribution=True)
    r_on = Engine(config, telemetry=session).run(trace, "li", "on")
    tel = r_on.telemetry
    assert tel.get("engine.replay.hit", 0) == 0
    assert tel.get("engine.replay.miss", 0) == 0
    off = dataclasses.replace(config, timing_memo=False)
    r_off = Engine(off, telemetry=Telemetry(attribution=True)).run(
        trace, "li", "off")
    assert r_on.cycles == r_off.cycles


def test_memo_disabled_has_no_controller():
    config = dataclasses.replace(SimConfig.tiny(), timing_memo=False)
    assert Engine(config).replay is None


def test_memo_capacity_bounds_entries():
    trace = run_program(workloads.build("li", scale=0.2))
    config = dataclasses.replace(SimConfig.tiny(OptimizationConfig.all()),
                                 memo_capacity=16)
    engine = Engine(config)
    result = engine.run(trace, "li", "small-memo")
    assert len(engine.replay.memo) <= 16
    assert result.telemetry.get("engine.replay.invalidate", 0) > 0


# -- freeze / probe / unfreeze transitions ------------------------------

def _visit_harness():
    """A fresh engine plus a fabricated single-segment visit: an empty
    entry list keeps the key machinery trivial (no registers, no memory
    ops) while still exercising the real ``on_group`` policy path."""
    from repro.tracecache.segment import TraceSegment
    engine = Engine(SimConfig.tiny(OptimizationConfig.all()))
    # Move the bandwidth units off their reset-on-first-use idle band:
    # captured post-digests must be in the exact form ``restore``
    # installs (a real slow-path visit always renames/retires past the
    # base, so real records never carry the idle token).
    engine.rename_unit._cycle, engine.rename_unit._count = 5, 2
    engine.retire_unit._cycle, engine.retire_unit._count = 5, 1
    seg = TraceSegment(start_pc=0, instrs=[])
    group = FetchGroup(entries=[], fetch_cycle=0,
                       consumed=_MIN_REPLAY_CONSUMED, segment=seg)
    state = MachineState(records=[], n=0, result=None,
                         reg_ready=[(0, None)] * 32, group=group)
    return engine, engine.replay, state, seg


def test_cold_freeze_then_backed_off_probes():
    """A segment that only ever misses is frozen after the fast
    threshold, then re-keyed in probe pairs whose gap backs off
    exponentially up to ``_PROBE_MAX``."""
    ctl_engine, ctl, state, seg = _visit_harness()
    # Phase 1: misses accumulate (captures discarded, so every keyed
    # visit misses) until the fast cold threshold freezes the token.
    for _ in range(_COLD_MISSES_FAST):
        assert ctl.on_group(state) is False
        assert ctl._pending is not None      # keyed: armed for capture
        ctl._pending = None                  # discard -> stays a miss
    stats = ctl._tok_stats[seg.memo_token]
    assert stats == [0, _COLD_MISSES_FAST, 0, _PROBE_MIN]
    assert _is_cold(stats)
    # Phase 2: frozen. Visits below the probe gap are bypassed without
    # building a key (no arm, no new miss).
    for visit in range(1, _PROBE_MIN):
        assert ctl.on_group(state) is False
        assert ctl._pending is None          # frozen: never keyed
        assert stats[1] == _COLD_MISSES_FAST
        assert stats[2] == visit
    # Phase 3: the probe pair — two consecutive keyed visits. Both
    # miss, so the gap doubles once (per pair, not per visit).
    for _ in range(2):
        assert ctl.on_group(state) is False
        assert ctl._pending is not None
        ctl._pending = None
    assert stats[3] == _PROBE_MIN * 2
    assert stats[1] == _COLD_MISSES_FAST + 2
    # Phase 4: back-off continues pair by pair until _PROBE_MAX, then
    # saturates there.
    gap = _PROBE_MIN * 2
    while gap < _PROBE_MAX:
        for _ in range(gap - 1):             # bypassed cold visits
            assert ctl.on_group(state) is False
            assert ctl._pending is None
        for _ in range(2):                   # the keyed probe pair
            assert ctl.on_group(state) is False
            ctl._pending = None
        gap *= 2
        assert stats[3] == gap
    for _ in range(_PROBE_MAX - 1):
        ctl.on_group(state)
    for _ in range(2):
        ctl.on_group(state)
        ctl._pending = None
    assert stats[3] == _PROBE_MAX            # saturated, not doubled


def test_probe_hit_unfreezes_frozen_segment():
    """A probe pair whose first visit is captured makes the second
    visit a memo hit, which rewarms the token to a fresh warm state
    (one hit, zero misses, probe gap reset to the minimum)."""
    ctl_engine, ctl, state, seg = _visit_harness()
    for _ in range(_COLD_MISSES_FAST):       # freeze
        ctl.on_group(state)
        ctl._pending = None
    stats = ctl._tok_stats[seg.memo_token]
    assert _is_cold(stats)
    for _ in range(_PROBE_MIN - 1):          # ride out the gap
        assert ctl.on_group(state) is False
    # First probe visit: keyed miss; this time *capture* it.
    assert ctl.on_group(state) is False
    assert ctl._pending is not None
    ctl.after_group(state)
    assert len(ctl.memo) == 1
    # Second probe visit: identical context -> memo hit -> replayed.
    assert ctl.on_group(state) is True
    assert stats == [1, 0, 0, _PROBE_MIN]
    assert not _is_cold(stats)


# -- amortized pruning --------------------------------------------------

def test_on_group_prunes_every_16_groups():
    """The controller's maintenance prune runs once per
    ``_PRUNE_EVERY`` groups, on the replay path itself."""
    ctl_engine, ctl, state, _seg = _visit_harness()
    calls = []
    orig = ctl_engine.fus.prune_below
    ctl_engine.fus.prune_below = \
        lambda cycle: (calls.append(cycle), orig(cycle))[1]
    for _ in range(3 * _PRUNE_EVERY):
        ctl.on_group(state)
        ctl._pending = None
    assert len(calls) == 3


def test_pruning_is_digest_invariant_on_warm_engine():
    """``prune_below``/``prune_stale`` at a group's base must not
    change any context digest taken at that base — the invariant the
    every-16-group amortized prune rests on."""
    trace = run_program(workloads.build("li", scale=0.2))
    config = dataclasses.replace(SimConfig.tiny(OptimizationConfig.all()),
                                 memo_capacity=8)
    engine = Engine(config)
    result = engine.run(trace, "li", "prune-invariance")
    assert len(engine.replay.memo) <= 8
    base = result.cycles + 4
    words = tuple(sorted(engine.memsched._forward))[:4]
    before = (engine.fus.context_digest(base),
              engine.rs.context_digest(base),
              engine.memsched.context_digest(base, words))
    engine.fus.prune_below(base + 2)
    engine.memsched.prune_stale(base)
    after = (engine.fus.context_digest(base),
             engine.rs.context_digest(base),
             engine.memsched.context_digest(base, words))
    assert before == after


def test_small_memo_capacity_stays_bit_for_bit():
    """FIFO eviction under a tiny memo changes which visits replay,
    never the simulated timing: cycles and counters match memo-off."""
    trace = run_program(workloads.build("li", scale=0.2))
    base_cfg = SimConfig.tiny(OptimizationConfig.all())
    small = dataclasses.replace(base_cfg, memo_capacity=8)
    off = dataclasses.replace(base_cfg, timing_memo=False)
    r_small = Engine(small).run(trace, "li", "small")
    r_off = Engine(off).run(trace, "li", "off")
    assert r_small.cycles == r_off.cycles
    assert r_small.instructions == r_off.instructions
