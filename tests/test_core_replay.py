"""Unit tests for the replay controller's store and policy pieces."""

from __future__ import annotations

import dataclasses

from repro import workloads
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.pipeline import PipelineModel
from repro.core.replay import (
    _COLD_MISSES,
    _COLD_MISSES_FAST,
    _COLD_RATIO,
    _PROBE_MIN,
    TimingMemo,
    VisitRecord,
    _is_cold,
)
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine import run_program
from repro.telemetry import Telemetry


def _record(tag):
    """A minimal but structurally valid record (``approx_bytes`` walks
    the dataclass fields)."""
    return VisitRecord(
        retire=(tag,), regs=((1, ("a", 1, None)),),
        rename_post=("idle",), retire_post=("idle",),
        checkpoints_post=((), 0), fus_post=((), ()), rs_post=(),
        memsched_delta=(None, ()), cache_posts=(), attr_deltas=(),
        counter_deltas=(), fetch_post=(1, 0, 0))


# -- TimingMemo ---------------------------------------------------------

def test_memo_store_get_len():
    memo = TimingMemo(4)
    assert memo.get(("k", 1)) is None
    assert memo.store(("k", 1), _record(1)) == 0
    assert memo.get(("k", 1)) == _record(1)
    assert len(memo) == 1


def test_memo_fifo_eviction_at_capacity():
    memo = TimingMemo(2)
    assert memo.store(("a",), _record("a")) == 0
    assert memo.store(("b",), _record("b")) == 0
    assert memo.store(("c",), _record("c")) == 1    # evicts ("a",)
    assert memo.get(("a",)) is None
    assert memo.get(("b",)) == _record("b")
    assert memo.get(("c",)) == _record("c")


def test_memo_overwrite_does_not_evict():
    memo = TimingMemo(2)
    memo.store(("a",), _record(1))
    memo.store(("b",), _record(2))
    assert memo.store(("a",), _record(3)) == 0
    assert memo.get(("a",)) == _record(3)
    assert memo.get(("b",)) == _record(2)


def test_memo_invalidate():
    memo = TimingMemo(2)
    memo.store(("a",), _record(1))
    memo.invalidate(("a",))
    memo.invalidate(("never",))     # absent key: no-op
    assert memo.get(("a",)) is None
    assert len(memo) == 0


def test_memo_approx_bytes_sampled():
    memo = TimingMemo(4096)
    for i in range(500):
        memo.store((i,), _record(i))
    estimate = memo.approx_bytes()
    assert estimate > 0
    # The estimate extrapolates a bounded sample; it must scale with
    # the entry count, not with sample cost.
    memo2 = TimingMemo(4096)
    for i in range(50):
        memo2.store((i,), _record(i))
    assert estimate > memo2.approx_bytes()


# -- cold-segment policy ------------------------------------------------

def test_cold_needs_fast_threshold_without_hits():
    stats = [0, _COLD_MISSES_FAST - 1, 0, _PROBE_MIN]
    assert not _is_cold(stats)
    stats[1] = _COLD_MISSES_FAST
    assert _is_cold(stats)


def test_cold_with_hits_uses_lifetime_test():
    # Any hit at all moves the segment to the slow lifetime criterion.
    stats = [1, _COLD_MISSES - 1, 0, _PROBE_MIN]
    assert not _is_cold(stats)
    stats[1] = _COLD_MISSES
    assert _is_cold(stats)
    # A healthy hit rate is never cold, whatever the miss count.
    assert not _is_cold([_COLD_MISSES, _COLD_MISSES * _COLD_RATIO // 2,
                         0, _PROBE_MIN])


def test_adaptive_bypass_engages_on_compress():
    """compress's hash-table segments never produce repeatable keys;
    the controller must stop keying them (bypass > 0) while still
    replaying the hot loop segments (hit > 0)."""
    trace = run_program(workloads.build("compress", scale=0.2))
    config = SimConfig.tiny(OptimizationConfig.all())
    result = PipelineModel(config).run(trace, benchmark="compress",
                                       label="memo-on")
    tel = result.telemetry
    assert tel.get("engine.replay.hit", 0) > 0
    assert tel.get("engine.replay.bypass", 0) > 0


# -- run eligibility ----------------------------------------------------

def test_attribution_session_forces_slow_path():
    """Cycle attribution observes every instruction, so a session with
    attribution on must never replay — and still match bit-for-bit."""
    trace = run_program(workloads.build("li", scale=0.2))
    config = SimConfig.tiny(OptimizationConfig.all())
    session = Telemetry(attribution=True)
    r_on = Engine(config, telemetry=session).run(trace, "li", "on")
    tel = r_on.telemetry
    assert tel.get("engine.replay.hit", 0) == 0
    assert tel.get("engine.replay.miss", 0) == 0
    off = dataclasses.replace(config, timing_memo=False)
    r_off = Engine(off, telemetry=Telemetry(attribution=True)).run(
        trace, "li", "off")
    assert r_on.cycles == r_off.cycles


def test_memo_disabled_has_no_controller():
    config = dataclasses.replace(SimConfig.tiny(), timing_memo=False)
    assert Engine(config).replay is None


def test_memo_capacity_bounds_entries():
    trace = run_program(workloads.build("li", scale=0.2))
    config = dataclasses.replace(SimConfig.tiny(OptimizationConfig.all()),
                                 memo_capacity=16)
    engine = Engine(config)
    result = engine.run(trace, "li", "small-memo")
    assert len(engine.replay.memo) <= 16
    assert result.telemetry.get("engine.replay.invalidate", 0) > 0
