"""Event stream tests: ring-buffer retention, sinks, JSONL round trip,
and the pipeline's event emission."""

import pytest

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    BRANCH_MISPREDICT,
    EventStream,
    JsonlSink,
    MemorySink,
    NULL_EVENT_STREAM,
    RUN_FINISHED,
    RUN_STARTED,
    SEGMENT_BUILT,
    read_jsonl,
)
from tests.helpers import run_asm

LOOP = """
main:
    li   $t9, 50
loop:
    addi $t0, $t0, 1
    sll  $t1, $t0, 2
    add  $t2, $t1, $t0
    blt  $t0, $t9, loop
    halt
"""


def test_ring_buffer_retention_and_dropped():
    stream = EventStream(capacity=4)
    for i in range(10):
        stream.emit("segment.built", i, start_pc=i)
    assert stream.emitted == 10
    assert len(stream) == 4
    assert stream.dropped == 6
    assert [e.cycle for e in stream.recent()] == [6, 7, 8, 9]
    assert stream.recent("no.such.kind") == []


def test_memory_sink_sees_everything_despite_ring():
    stream = EventStream(capacity=2)
    sink = MemorySink()
    stream.attach(sink)
    for i in range(5):
        stream.emit("segment.built", i)
    assert len(sink.events) == 5


def test_memory_sink_kind_filter():
    stream = EventStream()
    sink = MemorySink(kinds=[SEGMENT_BUILT])
    stream.attach(sink)
    stream.emit(SEGMENT_BUILT, 1)
    stream.emit(BRANCH_MISPREDICT, 2)
    assert [e.kind for e in sink.events] == [SEGMENT_BUILT]
    assert sink.by_kind(SEGMENT_BUILT) == sink.events


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "events.jsonl"
    stream = EventStream()
    sink = JsonlSink(str(path))
    stream.attach(sink)
    stream.emit(SEGMENT_BUILT, 7, start_pc=0x1000, instrs=12)
    stream.emit(BRANCH_MISPREDICT, 9, pc=0x2000, taken=True)
    sink.close()
    assert sink.written == 2
    events = read_jsonl(str(path))
    assert [e.kind for e in events] == [SEGMENT_BUILT, BRANCH_MISPREDICT]
    assert events[0].cycle == 7
    assert events[0].data == {"start_pc": 0x1000, "instrs": 12}
    assert events[1].data["taken"] is True


def test_null_stream_rejects_sinks():
    NULL_EVENT_STREAM.emit("anything", 0, ignored=1)   # silently no-op
    assert len(NULL_EVENT_STREAM) == 0
    with pytest.raises(RuntimeError):
        NULL_EVENT_STREAM.attach(MemorySink())


def test_disabled_session_uses_null_stream():
    telemetry = Telemetry(enabled=False)
    assert telemetry.events is NULL_EVENT_STREAM
    with pytest.raises(RuntimeError):
        telemetry.attach_memory()


def test_pipeline_emits_lifecycle_and_component_events():
    _, trace = run_asm(LOOP)
    telemetry = Telemetry()
    sink = telemetry.attach_memory()
    result = PipelineModel(SimConfig.tiny(), telemetry=telemetry).run(
        trace, "t", "r")
    kinds = {e.kind for e in sink.events}
    assert RUN_STARTED in kinds
    assert RUN_FINISHED in kinds
    assert SEGMENT_BUILT in kinds
    assert BRANCH_MISPREDICT in kinds
    finished = sink.by_kind(RUN_FINISHED)[0]
    assert finished.data["cycles"] == result.cycles
    assert sum(finished.data["attribution"].values()) == result.cycles
    built = sink.by_kind(SEGMENT_BUILT)
    assert len(built) == result.segments_built
    mispredicted = sink.by_kind(BRANCH_MISPREDICT)
    assert len(mispredicted) == (result.mispredicts
                                 + result.indirect_mispredicts)


def test_instr_timing_events_are_opt_in():
    _, trace = run_asm(LOOP)
    plain = Telemetry()
    quiet = plain.attach_memory()
    PipelineModel(SimConfig.tiny(), telemetry=plain).run(trace, "t", "r")
    assert quiet.by_kind("instr.retired") == []

    wanting = Telemetry()
    sink = MemorySink()
    sink.wants_instr_timing = True
    wanting.attach(sink)
    result = PipelineModel(SimConfig.tiny(), telemetry=wanting).run(
        trace, "t", "r")
    assert len(sink.by_kind("instr.retired")) == result.instructions
