"""Tokenizer tests."""

import pytest

from repro.asm.tokenizer import (parse_int, parse_mem_operand,
                                 parse_symbol_expr, split_operands,
                                 tokenize)
from repro.errors import AssemblerError


def test_blank_and_comment_lines_skipped():
    lines = tokenize("\n# full comment\n   ; also comment\n\n")
    assert lines == []


def test_label_only_line():
    lines = tokenize("loop:\n")
    assert len(lines) == 1
    assert lines[0].label == "loop" and lines[0].mnemonic is None


def test_label_with_instruction():
    lines = tokenize("top:  addi $t0, $t1, 4  # bump")
    assert lines[0].label == "top"
    assert lines[0].mnemonic == "addi"
    assert lines[0].operands == ["$t0", "$t1", "4"]


def test_line_numbers_are_one_based():
    lines = tokenize("\n\n  nop\n")
    assert lines[0].number == 3


def test_mnemonic_lowercased():
    assert tokenize("ADD $t0, $t1, $t2")[0].mnemonic == "add"


def test_split_operands_memory_form():
    assert split_operands("$t0, 8($sp)", 1) == ["$t0", "8($sp)"]


def test_split_operands_rejects_unbalanced():
    with pytest.raises(AssemblerError):
        split_operands("$t0, 8($sp", 1)
    with pytest.raises(AssemblerError):
        split_operands("$t0, 8)$sp(", 1)


def test_split_operands_rejects_empty():
    with pytest.raises(AssemblerError):
        split_operands("$t0,, $t1", 1)


def test_split_operands_char_literal_comma():
    assert split_operands("$t0, ','", 1) == ["$t0", "','"]


def test_parse_int_forms():
    assert parse_int("42", 1) == 42
    assert parse_int("-7", 1) == -7
    assert parse_int("0x10", 1) == 16
    assert parse_int("0XFF", 1) == 255
    assert parse_int("'A'", 1) == 65


def test_parse_int_rejects_garbage():
    with pytest.raises(AssemblerError):
        parse_int("twelve", 1)
    with pytest.raises(AssemblerError):
        parse_int("0x", 1)


def test_parse_mem_operand():
    assert parse_mem_operand("8($sp)", 1) == ("8", "$sp")
    assert parse_mem_operand("($t0)", 1) == ("0", "$t0")
    assert parse_mem_operand("arr+4($gp)", 1) == ("arr+4", "$gp")


def test_parse_mem_operand_rejects_bad_shape():
    with pytest.raises(AssemblerError):
        parse_mem_operand("8[$sp]", 1)


def test_parse_symbol_expr():
    assert parse_symbol_expr("foo") == ("foo", 1, "0")
    assert parse_symbol_expr("foo+8") == ("foo", 1, "8")
    assert parse_symbol_expr("foo - 4") == ("foo", -1, "4")
    assert parse_symbol_expr("123") is None
    assert parse_symbol_expr("-5") is None
