"""Opcode metadata tests."""

import pytest

from repro.isa.opcodes import (Format, Op, OpClass, REASSOCIABLE,
                               SCALED_ADD_SHIFTS, SCALED_ADD_TARGETS,
                               op_by_mnemonic, op_info)


def test_every_opcode_has_info():
    for op in Op:
        info = op_info(op)
        assert info.latency >= 1
        assert isinstance(info.format, Format)
        assert isinstance(info.opclass, OpClass)


def test_mnemonic_lookup():
    assert op_by_mnemonic("add") is Op.ADD
    assert op_by_mnemonic("LWX") is Op.LWX
    with pytest.raises(KeyError):
        op_by_mnemonic("frobnicate")


def test_latency_ordering():
    """Long operations must cost more than simple ALU ops."""
    assert op_info(Op.MULT).latency > op_info(Op.ADD).latency
    assert op_info(Op.DIV).latency > op_info(Op.MULT).latency


def test_branch_classification():
    for op in (Op.BEQ, Op.BNE, Op.BLEZ, Op.BGTZ, Op.BLTZ, Op.BGEZ):
        assert op_info(op).opclass is OpClass.BRANCH


def test_memory_classification():
    for op in (Op.LW, Op.LH, Op.LB, Op.LHU, Op.LBU, Op.LWX, Op.LBX):
        assert op_info(op).opclass is OpClass.LOAD
    for op in (Op.SW, Op.SH, Op.SB, Op.SWX, Op.SBX):
        assert op_info(op).opclass is OpClass.STORE


def test_control_classification():
    assert op_info(Op.J).opclass is OpClass.JUMP
    assert op_info(Op.JAL).opclass is OpClass.CALL
    assert op_info(Op.JALR).opclass is OpClass.CALL
    assert op_info(Op.JR).opclass is OpClass.INDIRECT
    assert op_info(Op.SYSCALL).opclass is OpClass.SYSCALL
    assert op_info(Op.HALT).opclass is OpClass.SYSCALL


def test_scaled_add_targets_include_adds_and_memory():
    assert Op.ADD in SCALED_ADD_TARGETS
    assert Op.LWX in SCALED_ADD_TARGETS
    assert Op.SW in SCALED_ADD_TARGETS      # paper: loads AND stores
    assert Op.SUB not in SCALED_ADD_TARGETS
    assert Op.ADDI not in SCALED_ADD_TARGETS


def test_scaled_add_shift_is_immediate_left_shift_only():
    assert SCALED_ADD_SHIFTS == frozenset({Op.SLL})


def test_reassociable_is_addi():
    assert REASSOCIABLE == frozenset({Op.ADDI})


def test_mnemonics_are_unique():
    assert len({op.value for op in Op}) == len(list(Op))
