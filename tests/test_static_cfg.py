"""Static CFG construction: blocks, edges, dominators, loops."""

import pytest

from repro.analysis.static.cfg import build_cfg, direct_target
from repro.asm import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.program.image import Program

DIAMOND = """
main:
    li   $t0, 1
    beq  $t0, $zero, other
    addi $t1, $t0, 1
    j    join
other:
    addi $t1, $t0, 2
join:
    add  $a0, $t1, $zero
    li   $v0, 1
    syscall
    halt
"""


@pytest.fixture
def diamond():
    return build_cfg(assemble(DIAMOND))


def _index_at(cfg, label):
    return cfg.block_starting(cfg.program.symbols[label]).index


def test_diamond_blocks_and_edges(diamond):
    cfg = diamond
    program = cfg.program
    # Leaders: main, the fallthrough after beq, other, join, and the
    # fallthroughs after j/syscall (join itself; the post-syscall li).
    entry = cfg.blocks[cfg.entry]
    assert entry.start == program.symbols["main"]
    assert entry.last.op is Op.BEQ
    then_index = entry.succs
    other = _index_at(cfg, "other")
    join = _index_at(cfg, "join")
    # The branch has exactly two successors: taken and fallthrough.
    assert other in then_index and len(then_index) == 2
    fallthrough = next(s for s in then_index if s != other)
    assert cfg.blocks[fallthrough].last.op is Op.J
    # Both arms rejoin.
    assert join in cfg.blocks[fallthrough].succs
    assert join in cfg.blocks[other].succs
    # Every instruction is in exactly one block.
    counted = sum(len(b.instrs) for b in cfg.blocks)
    assert counted == len(program.instructions)


def test_diamond_dominators_and_no_loops(diamond):
    cfg = diamond
    doms = cfg.dominators()
    join = _index_at(cfg, "join")
    other = _index_at(cfg, "other")
    # Neither arm dominates the join point; the entry does.
    assert cfg.entry in doms[join]
    assert other not in doms[join]
    assert doms[cfg.entry] == {cfg.entry}
    assert cfg.natural_loops() == []


def test_loop_detection():
    cfg = build_cfg(assemble("""
main:
    li   $t0, 10
    add  $t1, $zero, $zero
loop:
    add  $t1, $t1, $t0
    addi $t0, $t0, -1
    bgtz $t0, loop
    add  $a0, $t1, $zero
    li   $v0, 1
    syscall
    halt
"""))
    loops = cfg.natural_loops()
    assert len(loops) == 1
    loop = loops[0]
    header = cfg.blocks[loop.header]
    assert header.start == cfg.program.symbols["loop"]
    # The single-block loop body closes on itself.
    assert loop.back_edge_source == loop.header
    assert loop.body == frozenset({loop.header})


def test_call_and_return_edges():
    cfg = build_cfg(assemble("""
main:
    jal  helper
    add  $a0, $v0, $zero
    li   $v0, 1
    syscall
    halt
helper:
    li   $v0, 7
    jr   $ra
"""))
    program = cfg.program
    helper = cfg.block_starting(program.symbols["helper"])
    entry = cfg.blocks[cfg.entry]
    # The call edges into the callee, not past it.
    assert helper.index in entry.succs
    # The callee's return block edges back to the call return site.
    ret_block = cfg.block_of(program.symbols["helper"] + 4)
    return_site = program.symbols["main"] + 4
    assert any(cfg.blocks[s].start == return_site
               for s in ret_block.succs)


def test_unreachable_block_detected():
    cfg = build_cfg(assemble("""
main:
    halt
dead:
    addi $t0, $zero, 1
    halt
"""))
    reachable = cfg.reachable()
    dead = cfg.block_starting(cfg.program.symbols["dead"])
    assert dead.index not in reachable
    assert cfg.entry in reachable


def test_has_flow_intra_block_and_terminal(diamond):
    cfg = diamond
    entry = cfg.blocks[cfg.entry]
    first_pc = entry.instrs[0].pc
    # Mid-block: only pc+4 is flow.
    assert cfg.has_flow(first_pc, first_pc + 4)
    assert not cfg.has_flow(first_pc, first_pc + 8)
    # Terminal: both branch arms are flow, a random address is not.
    branch_pc = entry.last.pc
    assert cfg.has_flow(branch_pc, cfg.program.symbols["other"])
    assert cfg.has_flow(branch_pc, branch_pc + 4)
    assert not cfg.has_flow(branch_pc, cfg.program.symbols["join"])
    # An address outside the program has no flow at all.
    assert not cfg.has_flow(0xDEAD0000, 0xDEAD0004)


def test_bad_target_recorded_not_linked():
    program = Program(instructions=[
        Instruction(Op.BEQ, rs=8, rt=0, imm=0x5000),
        Instruction(Op.HALT),
    ])
    cfg = build_cfg(program)
    (pc, target), = cfg.bad_targets
    assert pc == program.text_base
    assert target == program.text_base + 0x5000
    # No edge was created for the bogus target; the fallthrough stays.
    entry = cfg.blocks[cfg.entry]
    assert [cfg.blocks[s].start for s in entry.succs] \
        == [program.text_base + 4]


def test_direct_target_kinds():
    branch = Instruction(Op.BNE, rs=8, rt=9, imm=-8, pc=0x1010)
    assert direct_target(branch) == 0x1008
    jump = Instruction(Op.J, imm=0x1400, pc=0x1010)
    assert direct_target(jump) == 0x1400
    assert direct_target(Instruction(Op.JR, rs=31, pc=0x1010)) is None


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        build_cfg(Program(instructions=[]))


def test_workload_cfgs_are_total():
    """Every registered workload partitions cleanly into blocks."""
    from repro import workloads
    for name in workloads.names():
        program = workloads.build(name, 0.2)
        cfg = build_cfg(program)
        assert sum(len(b.instrs) for b in cfg.blocks) == len(program)
        assert not cfg.bad_targets
