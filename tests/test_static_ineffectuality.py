"""The ineffectuality oracle: static classification, the dynamic log,
the containment property, and timing neutrality of the observer."""

import pytest

from repro import workloads
from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.dataflow import ReachingDefinitions, solve
from repro.analysis.static.ineffectuality import (
    MustUse,
    classify_ineffectuality,
    ineffectuality_sites,
)
from repro.analysis.static.interproc import interprocedural_analysis
from repro.analysis.static.valueflow import solve_valueflow
from repro.asm import assemble
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.core.stages.ineff import IneffectualityLog, IneffectualityLogStage
from repro.errors import ConfigError
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.crosscheck import (
    IneffectualityCheck,
    collect_ineffectual_sites,
    ineffectuality_cross_check,
)
from repro.machine.executor import Executor, run_program

T0, T1 = 8, 9


def _sites(src):
    cfg = build_cfg(assemble(src))
    vf = solve_valueflow(cfg, cfg.program)
    return cfg, ineffectuality_sites(cfg, vf)


# -- static classification ----------------------------------------------

def test_overwritten_write_is_a_dead_candidate():
    cfg, sites = _sites("""
main:
    li   $t0, 1
    li   $t0, 2
    li   $v0, 1
    add  $a0, $t0, $zero
    syscall
    halt
""")
    first = cfg.program.symbols["main"]
    assert first in sites.dead_writes          # overwritten unread
    assert first + 4 not in sites.dead_writes  # read by the add


def test_must_used_write_is_excluded():
    cfg, sites = _sites("""
main:
    li   $t0, 7
    add  $t1, $t0, $t0
    li   $v0, 10
    syscall
    halt
""")
    assert cfg.program.symbols["main"] not in sites.dead_writes


def test_self_induction_is_not_predictable():
    # $t0 starts from the loader (ENTRY_DEF) and is only ever redefined
    # by the induction itself — the strict exclusion applies.
    cfg, sites = _sites("""
main:
loop:
    addi $t0, $t0, 1
    slti $t1, $t0, 50
    bne  $t1, $zero, loop
    halt
""")
    induction = next(i for i in cfg.program.instructions
                     if i.op.value == "addi"
                     and i.rd == T0 and i.rs == T0 and i.imm == 1)
    assert induction.pc not in sites.predictable
    # the comparison result (mostly 1, then 0) stays a candidate.
    slti = next(i for i in cfg.program.instructions
                if i.op.value == "slti")
    assert slti.pc in sites.predictable


def test_constant_producers_are_constants_and_predictable():
    cfg, sites = _sites("""
main:
    li   $t0, 123
    halt
""")
    pc = cfg.program.symbols["main"]
    assert pc in sites.constants
    assert pc in sites.predictable


def test_provably_not_silent_store_is_excluded():
    cfg, sites = _sites("""
main:
    li   $t0, 7
    sw   $t0, 0($sp)
    li   $t1, 9
    sw   $t1, 0($sp)
    halt
""")
    stores = [i for i in cfg.program.instructions
              if i.op.value == "sw"]
    # first store: slot holds the image value 0, stored value 7 —
    # provably different, excluded.
    assert stores[0].pc not in sites.silent_stores
    # second store: slot provably holds 7, stores 9 — also excluded.
    assert stores[1].pc not in sites.silent_stores


def test_possibly_silent_store_is_a_candidate():
    cfg, sites = _sites("""
main:
    li   $t0, 0
    sw   $t0, 0($sp)
    halt
""")
    store = next(i for i in cfg.program.instructions
                 if i.op.value == "sw")
    # stores 0 over the image's 0: genuinely silent, must be kept.
    assert store.pc in sites.silent_stores


def test_mustuse_syscall_keeps_only_its_own_reads():
    cfg = build_cfg(assemble("""
main:
    li   $v0, 1
    li   $a0, 5
    li   $t0, 9
    syscall
    add  $t1, $t0, $t0
    halt
"""))
    result = solve(cfg, MustUse())
    block = cfg.block_of(cfg.program.symbols["main"])
    before_syscall = result.instr_values(block.index)
    # at the write of $t0 (index 2), the value after the instruction
    # must not claim $t0 is surely read: the syscall may exit first.
    after_t0_write = before_syscall[2]
    assert not (after_t0_write >> T0) & 1
    assert (after_t0_write >> 2) & 1      # $v0 is read by the syscall


# -- the dynamic log -----------------------------------------------------

def _replay(src):
    program = assemble(src)
    trace = Executor(program).run()
    log = IneffectualityLog(program)
    for record in trace.records:
        log.observe(record)
    log.finish()
    return program, log


def test_dynamic_dead_write_detected():
    program, log = _replay("""
main:
    li   $t0, 1
    li   $t0, 2
    halt
""")
    assert program.symbols["main"] in log.sites["dead_write"]
    # end-of-run flush: the second write is never read either.
    assert program.symbols["main"] + 4 in log.sites["dead_write"]


def test_dynamic_silent_store_detected():
    program, log = _replay("""
main:
    li   $t0, 0
    sw   $t0, 0($sp)
    halt
""")
    store = next(i for i in program.instructions
                 if i.op.value == "sw")
    assert store.pc in log.sites["silent_store"]
    assert log.occurrences["silent_store"] == 1


def test_dynamic_predictable_value_detected():
    program, log = _replay("""
main:
    li   $t1, 0
loop:
    li   $t0, 7
    addi $t1, $t1, 1
    slti $t2, $t1, 3
    bne  $t2, $zero, loop
    halt
""")
    li7 = next(i for i in program.instructions
               if i.op.value == "addi" and i.imm == 7)
    assert li7.pc in log.sites["predictable"]
    induction = next(i for i in program.instructions
                     if i.op.value == "addi"
                     and i.rd == i.rs and i.imm == 1)
    assert induction.pc not in log.sites["predictable"]


# -- containment + the harness check ------------------------------------

@pytest.mark.parametrize("name", ["compress", "li"])
def test_containment_acceptance_workloads(name):
    program = workloads.build(name, 0.5)
    ia = interprocedural_analysis(program)
    trace = run_program(program)
    config = SimConfig.paper(OptimizationConfig.all())
    check = ineffectuality_cross_check(ia.ineff, trace, config,
                                       program, name)
    assert check.ok, check.render()
    check.ensure()                    # must not raise


def test_containment_all_workloads_small_scale():
    config = SimConfig.tiny()
    for name in workloads.names():
        program = workloads.build(name, 0.2)
        ia = interprocedural_analysis(program)
        trace = run_program(program)
        check = ineffectuality_cross_check(ia.ineff, trace, config,
                                           program, name)
        assert check.ok, f"{name}: {check.render()}"


def test_ensure_raises_on_violation():
    check = IneffectualityCheck(
        benchmark="x", config_label="all",
        static_counts={}, dynamic_counts={}, occurrences={})
    check.ensure()                    # no violations: fine
    from repro.harness.crosscheck import IneffViolation
    check.violations.append(IneffViolation(kind="dead_write", pc=0x1000))
    with pytest.raises(ConfigError):
        check.ensure()


def test_observer_is_timing_neutral():
    program = workloads.build("compress", 0.2)
    trace = run_program(program)
    for opts in (OptimizationConfig.none(), OptimizationConfig.all()):
        config = SimConfig.paper(opts)
        bare = PipelineModel(config).run(trace, benchmark="compress",
                                         label="bare")
        result, _, _ = collect_ineffectual_sites(
            trace, config, program, "compress", "observed")
        assert result.cycles == bare.cycles
        assert result.instructions == bare.instructions


@pytest.mark.parametrize("name,golden", [("compress", 16344),
                                         ("li", 13709)])
def test_observer_preserves_golden_cycles(name, golden):
    # the seed's bit-for-bit cycle counts at the default scale, with
    # and without the ineffectuality log attached.
    program = workloads.build(name, 0.5)
    trace = run_program(program)
    config = SimConfig.paper(OptimizationConfig.all())
    bare = PipelineModel(config).run(trace, benchmark=name, label="bare")
    assert bare.cycles == golden
    observed, _, _ = collect_ineffectual_sites(
        trace, config, program, name, "observed")
    assert observed.cycles == golden


def test_observer_stage_skips_phantoms():
    program = workloads.build("li", 0.2)
    trace = run_program(program)
    config = SimConfig.paper(OptimizationConfig.extended())
    model = PipelineModel(config)
    stage = IneffectualityLogStage(program)
    model.stages.append(stage)
    model.run(trace, benchmark="li", label="phantoms")
    # the extended config introduces predicated phantoms; the log must
    # still exactly match a plain architectural replay.
    log = IneffectualityLog(program)
    for record in trace.records:
        log.observe(record)
    log.finish()
    assert stage.log.sites == log.sites
    assert stage.log.occurrences == log.occurrences


def test_interproc_candidates_never_looser_than_intra():
    # the interprocedural sets come from the refined graph: compare
    # against a run of the same classifier on the unrefined graph.
    for name in ("compress", "li", "vortex"):
        program = workloads.build(name, 0.2)
        cfg = build_cfg(program)
        vf = solve_valueflow(cfg, program)
        intra = ineffectuality_sites(cfg, vf)
        ia = interprocedural_analysis(program)
        for kind in ("dead_writes", "silent_stores", "predictable"):
            assert getattr(ia.ineff, kind) <= getattr(intra, kind), \
                (name, kind)


def test_refinement_strictly_tightens_candidates():
    # a branch the value flow decides prunes its dead arm, and the dead
    # arm's writes leave every candidate set — interprocedural sets are
    # strictly smaller than the unrefined run on the same program.
    program = assemble("""
main:
    li   $t0, 1
    beq  $t0, $zero, dead
    li   $v0, 10
    syscall
    halt
dead:
    li   $t1, 3
    li   $t1, 3
    halt
""")
    cfg = build_cfg(program)
    intra = ineffectuality_sites(cfg, solve_valueflow(cfg, program))
    ia = interprocedural_analysis(program)
    dead_pc = program.symbols["dead"]
    assert dead_pc in intra.dead_writes
    assert dead_pc not in ia.ineff.dead_writes
    assert ia.ineff.predictable < intra.predictable


def test_classify_skips_unreachable_pcs():
    program = assemble("""
main:
    li   $v0, 10
    syscall
    halt
orphan:
    li   $t0, 5
    li   $t0, 5
    halt
""")
    ia = interprocedural_analysis(program)
    orphan = program.symbols["orphan"]
    # the orphan block is value-flow unreachable: none of its writes
    # are candidates (they can never be observed).
    assert orphan not in ia.ineff.dead_writes
    assert orphan not in ia.ineff.predictable
    reaching = solve(ia.cfg, ReachingDefinitions())
    sites = classify_ineffectuality(ia.cfg, ia.valueflow, reaching)
    assert sites.dead_writes == ia.ineff.dead_writes
