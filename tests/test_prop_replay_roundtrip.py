"""Property tests for the replay layer's snapshot–digest–delta
surfaces.

Three families of invariants keep the timing memo sound:

* **Shift equivalence** — ``shift_digest(context_digest(b), d)`` must
  be bit-identical to ``context_digest(b + d)`` when nothing mutates
  the component in between; the replay controller leans on this to
  carry one group's post-visit digest forward as the next group's key.
* **Restore round-trips** — installing a digest and re-digesting must
  reproduce it, for every component and for cache sets.
* **Whole-machine equivalence on awkward records** — wrong-path
  phantoms (guard-false predication bodies) and interrupt-adjacent
  (serializing syscall) records must stay bit-identical with the memo
  on, not just straight-line loop bodies.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import MemoryHierarchy
from repro.cache.policy import POLICY_NAMES
from repro.cache.setassoc import SetAssocCache
from repro.core.clusters import (
    CheckpointStore,
    FunctionalUnits,
    ReservationStations,
)
from repro.core.config import SimConfig
from repro.core.memsched import MemoryScheduler
from repro.core.pipeline import PipelineModel
from repro.core.rename import RenameUnit, RetireUnit
from repro.fillunit.opts.base import OptimizationConfig
from tests.helpers import run_asm

cycles = st.integers(min_value=0, max_value=200)
deltas = st.integers(min_value=0, max_value=64)
bases = st.integers(min_value=0, max_value=256)


# ----------------------------------------------------------------------
# Shift equivalence: digest-at-(b+d) == shift(digest-at-b, d)
# ----------------------------------------------------------------------


@given(ops=st.lists(st.tuples(st.integers(0, 3), cycles), max_size=40),
       base=bases, delta=deltas)
def test_fus_shift_equivalence(ops, base, delta):
    fus = FunctionalUnits(4)
    for fu, earliest in ops:
        fus.reserve(fu, earliest)
    assert FunctionalUnits.shift_digest(fus.context_digest(base), delta) \
        == fus.context_digest(base + delta)


@given(ops=st.lists(st.tuples(st.integers(0, 3), cycles, cycles),
                    max_size=40),
       base=bases, delta=deltas)
def test_rs_shift_equivalence(ops, base, delta):
    rs = ReservationStations(4, 4)
    for fu, enter, until in ops:
        rs.admit(fu, enter)
        rs.occupy(fu, until)
    assert ReservationStations.shift_digest(rs.context_digest(base),
                                            delta) \
        == rs.context_digest(base + delta)


@given(ops=st.lists(st.tuples(st.booleans(), cycles), max_size=40),
       base=bases, delta=deltas)
def test_checkpoints_shift_equivalence(ops, base, delta):
    store = CheckpointStore(4)
    for is_commit, cycle in ops:
        if is_commit:
            store.commit(cycle)
        else:
            store.acquire(cycle)
    assert CheckpointStore.shift_digest(store.context_digest(base),
                                        delta) \
        == store.context_digest(base + delta)


@given(ops=st.lists(st.tuples(cycles, st.booleans(), cycles),
                    max_size=40),
       base=bases, delta=deltas)
def test_rename_shift_equivalence(ops, base, delta):
    unit = RenameUnit(4, 2, 64)
    for fetch_cycle, block_end, release in ops:
        unit.rename(fetch_cycle, block_end, release)
    assert RenameUnit.shift_digest(unit.context_digest(base), delta) \
        == unit.context_digest(base + delta)


@given(ops=st.lists(cycles, max_size=40), base=bases, delta=deltas)
def test_retire_shift_equivalence(ops, base, delta):
    unit = RetireUnit(4)
    for complete in ops:
        unit.retire(complete)
    assert RetireUnit.shift_digest(unit.context_digest(base), delta) \
        == unit.context_digest(base + delta)


# ----------------------------------------------------------------------
# Restore round-trips: restore(digest) then digest again
# ----------------------------------------------------------------------


@given(ops=st.lists(st.tuples(st.integers(0, 3), cycles), min_size=1,
                    max_size=40),
       base=bases)
def test_fus_restore_roundtrip(ops, base):
    fus = FunctionalUnits(4)
    for fu, earliest in ops:
        fus.reserve(fu, earliest)
    snap = fus.context_digest(base)
    fresh = FunctionalUnits(4)
    fresh.restore(base, snap)
    assert fresh.context_digest(base) == snap


@given(ops=st.lists(st.tuples(st.integers(0, 3), cycles, cycles),
                    min_size=1, max_size=40),
       base=bases)
def test_rs_restore_roundtrip(ops, base):
    rs = ReservationStations(4, 4)
    for fu, enter, until in ops:
        rs.admit(fu, enter)
        rs.occupy(fu, until)
    snap = rs.context_digest(base)
    fresh = ReservationStations(4, 4)
    fresh.restore(base, snap)
    assert fresh.context_digest(base) == snap


@given(ops=st.lists(st.tuples(st.booleans(), cycles), min_size=1,
                    max_size=40),
       base=bases)
def test_checkpoints_restore_roundtrip(ops, base):
    store = CheckpointStore(4)
    for is_commit, cycle in ops:
        if is_commit:
            store.commit(cycle)
        else:
            store.acquire(cycle)
    snap = store.context_digest(base)
    fresh = CheckpointStore(4)
    fresh.restore(base, snap)
    assert fresh.context_digest(base) == snap


@given(addrs=st.lists(st.integers(0, 1 << 16).map(lambda a: a * 4),
                      min_size=1, max_size=64))
def test_cache_set_restore_roundtrip(addrs):
    cache = SetAssocCache(1024, 2, 16, "prop")
    mirror = SetAssocCache(1024, 2, 16, "mirror")
    for addr in addrs:
        cache.access(addr)
    for index in {cache.set_index(addr) for addr in addrs}:
        snap = cache.set_digest(index)
        mirror.restore_set(index, snap)
        assert mirror.set_digest(index) == snap
        # Restoring a set onto itself is a no-op.
        cache.restore_set(index, snap)
        assert cache.set_digest(index) == snap


@given(policy=st.sampled_from(POLICY_NAMES),
       addrs=st.lists(st.integers(0, 1 << 16).map(lambda a: a * 4),
                      min_size=1, max_size=96))
def test_every_policy_digest_restore_roundtrip(policy, addrs):
    """Every replacement policy's ``state_digest``/``restore`` must
    round-trip through ``set_digest``/``restore_set``: the policy's
    metadata rides inside the cache digest, so a hole here silently
    poisons the replay memo key."""
    cache = SetAssocCache(1024, 2, 16, "prop", policy=policy)
    mirror = SetAssocCache(1024, 2, 16, "mirror", policy=policy)
    for addr in addrs:
        cache.access(addr)
    for index in {cache.set_index(addr) for addr in addrs}:
        snap = cache.set_digest(index)
        mirror.restore_set(index, snap)
        assert mirror.set_digest(index) == snap
        cache.restore_set(index, snap)
        assert cache.set_digest(index) == snap
    # After the restore the mirror must also *behave* identically:
    # the same access stream produces the same digests and victims.
    for index in {cache.set_index(addr) for addr in addrs}:
        mirror.restore_set(index, cache.set_digest(index))
    for addr in addrs[:32]:
        assert cache.access(addr) == mirror.access(addr)
    for index in {cache.set_index(addr) for addr in addrs[:32]}:
        assert cache.set_digest(index) == mirror.set_digest(index)


# ----------------------------------------------------------------------
# Memory-scheduler delta capture/apply
# ----------------------------------------------------------------------


@given(
    shared=st.lists(st.tuples(st.integers(0, 255).map(lambda a: a * 4),
                              cycles, cycles),
                    max_size=24),
    visit=st.lists(st.tuples(st.integers(0, 255).map(lambda a: a * 4),
                             st.integers(100, 300),
                             st.integers(100, 300)),
                   min_size=1, max_size=12),
    base=st.integers(min_value=90, max_value=99))
def test_memsched_delta_roundtrip(shared, visit, base):
    """Drive two schedulers to the same state, run a visit's stores on
    one, and apply the captured delta to the other: their observable
    digests must agree for every load-word set a future group could
    probe."""
    sched_a = MemoryScheduler(MemoryHierarchy(), 128)
    sched_b = MemoryScheduler(MemoryHierarchy(), 128)
    for addr, agen, data in shared:
        sched_a.store_timing(addr, agen, data)
        sched_b.store_timing(addr, agen, data)
    store_words = []
    for addr, agen, data in visit:
        sched_a.store_timing(addr, agen, data)
        store_words.append(addr & ~3)
    delta = sched_a.capture_delta(base, tuple(sorted(set(store_words))))
    sched_b.apply_delta(base, delta)
    probe = sorted({addr & ~3 for addr, _a, _d in shared + visit})
    for later in (base, base + 7, base + 50):
        assert sched_a.context_digest(later, probe) \
            == sched_b.context_digest(later, probe)


# ----------------------------------------------------------------------
# Whole-machine equivalence on awkward record shapes
# ----------------------------------------------------------------------

#: serializing syscalls inside the hot loop: every iteration retires
#: interrupt-adjacent records (SYSCALL both terminates segments and
#: serializes the pipeline).
_SYSCALL_KERNEL = """
main:
    addi $t0, $zero, 40
    addi $v0, $zero, 1
loop:
    addi $a0, $t0, 0
    syscall
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt
"""

#: a hard-to-predict short forward branch: under the extended pass set
#: its body runs predicated, retiring guard-false phantom records.
_PHANTOM_KERNEL = """
main:
    addi $t0, $zero, 64
    addi $t1, $zero, 0
    addi $t2, $zero, 0
loop:
    andi $t3, $t0, 3
    beq  $t3, $zero, skip
    addi $t1, $t1, 1
skip:
    addi $t2, $t2, 1
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt
"""


def _comparable(result):
    out = dataclasses.asdict(result)
    del out["config_label"]
    out["telemetry"] = {
        scope: value for scope, value in result.telemetry.items()
        if not scope.startswith("engine.replay.")}
    return out


def _assert_memo_equivalent(source):
    _program, trace = run_asm(source)
    config = SimConfig.tiny(OptimizationConfig.extended())
    off = dataclasses.replace(config, timing_memo=False)
    r_off = PipelineModel(off).run(trace, benchmark="kernel",
                                   label="off")
    r_on = PipelineModel(config).run(trace, benchmark="kernel",
                                     label="on")
    assert _comparable(r_on) == _comparable(r_off)


def test_interrupt_adjacent_records_bit_identical():
    _assert_memo_equivalent(_SYSCALL_KERNEL)


def test_predication_phantom_records_bit_identical():
    _assert_memo_equivalent(_PHANTOM_KERNEL)
