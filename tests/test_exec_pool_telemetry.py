"""Which telemetry reaches the parent session under ``--jobs N``.

Pins the contract documented in docs/observability.md: with a worker
pool, only the execution-service job-lifecycle events
(``exec.job.started`` / ``exec.job.finished`` / ``exec.job.cached``)
and ``exec.worker.retry`` are emitted on the parent session's event
stream — per-run engine events (``segment.built``, ``run.finished``,
...) happen in worker processes (or in an engine constructed without
the session, on the inline path) and never reach it. The contract is
deliberately identical for ``jobs=1`` and ``jobs>1``.
"""

from __future__ import annotations

import pytest

from repro.exec.grid import expand, opt_variant
from repro.exec.service import ExecutionService
from repro.fillunit.opts.base import OptimizationConfig
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EXEC_JOB_CACHED,
    EXEC_JOB_FINISHED,
    EXEC_JOB_STARTED,
    EXEC_WORKER_RETRY,
)

SCALE = 0.05
EXEC_KINDS = {EXEC_JOB_STARTED, EXEC_JOB_FINISHED, EXEC_JOB_CACHED,
              EXEC_WORKER_RETRY}


def _jobs():
    return expand(("compress", "li"),
                  [opt_variant(OptimizationConfig.none()),
                   opt_variant(OptimizationConfig.all())])


@pytest.mark.parametrize("jobs", [1, 2])
def test_only_exec_events_reach_parent_session(jobs):
    telemetry = Telemetry(attribution=False)
    sink = telemetry.attach_memory()
    service = ExecutionService(scale=SCALE, jobs=jobs,
                               telemetry=telemetry)
    specs = _jobs()
    service.run_many(specs)

    kinds = {event.kind for event in sink.events}
    assert kinds <= EXEC_KINDS, (
        f"unexpected event kinds on the parent session: "
        f"{sorted(kinds - EXEC_KINDS)}")
    started = sink.by_kind(EXEC_JOB_STARTED)
    finished = sink.by_kind(EXEC_JOB_FINISHED)
    assert len(started) == len(specs)
    assert len(finished) == len(specs)
    # Payload schema: every lifecycle event names its job.
    for event in started + finished:
        assert {"benchmark", "label", "fingerprint"} <= set(event.data)
    for event in finished:
        assert event.data["cycles"] > 0


def test_memo_hits_emit_cached_not_started():
    telemetry = Telemetry(attribution=False)
    sink = telemetry.attach_memory()
    service = ExecutionService(scale=SCALE, jobs=1, telemetry=telemetry)
    specs = _jobs()
    service.run_many(specs)
    before = len(sink.by_kind(EXEC_JOB_STARTED))
    service.run_many(specs)          # all memo hits now
    cached = sink.by_kind(EXEC_JOB_CACHED)
    assert len(cached) == len(specs)
    assert all(e.data["source"] == "memo" for e in cached)
    assert len(sink.by_kind(EXEC_JOB_STARTED)) == before


def test_pool_emits_wall_clock_job_spans():
    telemetry = Telemetry(attribution=False, spans=True)
    service = ExecutionService(scale=SCALE, jobs=2, telemetry=telemetry)
    specs = _jobs()
    service.run_many(specs)
    recorder = telemetry.spans
    job_spans = recorder.by_name("exec.job")
    assert len(job_spans) == len(specs)
    assert all(r["timebase"] == "wall" for r in job_spans)
    sources = {r["args"]["source"] for r in job_spans}
    assert "simulated" in sources
    batches = recorder.by_name("exec.pool_batch")
    assert batches and batches[0]["args"]["workers"] == 2
    # Simulated-time spans never appear: workers don't share the
    # recorder, and the parent never runs an instrumented engine here.
    assert all(r["timebase"] == "wall" for r in recorder.records)


def test_worker_retry_reaches_parent_stream(tmp_path):
    from repro.exec.pool import WorkerPool

    telemetry = Telemetry(attribution=False, spans=True)
    sink = telemetry.attach_memory()
    service = ExecutionService(scale=SCALE, jobs=2, telemetry=telemetry)
    spec = _jobs()[0]
    payload = service._payload(spec, service.fingerprint(spec))
    payload["crash_once_path"] = str(tmp_path / "crash-marker")
    pool = WorkerPool(2, retries=2, events=telemetry.events,
                      spans=telemetry.spans)
    results = pool.run([payload])
    assert len(results) == 1
    retries = sink.by_kind(EXEC_WORKER_RETRY)
    assert retries and retries[0].data["benchmark"] == spec.benchmark
    assert telemetry.spans.by_name("exec.worker.retry")
    assert len(telemetry.spans.by_name("exec.pool_batch")) == 2
