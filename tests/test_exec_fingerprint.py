"""Job fingerprinting: stability and sensitivity."""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.exec.fingerprint import (
    canonical_json,
    code_version,
    job_fingerprint,
)
from repro.fillunit.opts.base import OptimizationConfig


def test_code_version_stable_and_short():
    first = code_version()
    assert first == code_version()
    assert len(first) == 16
    int(first, 16)                      # hex


def test_canonical_json_is_order_insensitive():
    assert (canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]})
            == canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1}))


def test_same_job_same_fingerprint():
    config = SimConfig.paper(OptimizationConfig.all())
    assert (job_fingerprint(config, "compress", 0.5)
            == job_fingerprint(SimConfig.paper(OptimizationConfig.all()),
                               "compress", 0.5))


def test_fingerprint_sensitivity():
    base = SimConfig.paper()
    fp = job_fingerprint(base, "compress", 0.5)
    assert fp != job_fingerprint(base, "li", 0.5)
    assert fp != job_fingerprint(base, "compress", 0.6)
    assert fp != job_fingerprint(base, "compress", 0.5,
                                 max_instructions=1000)
    assert fp != job_fingerprint(base.with_fill_latency(6),
                                 "compress", 0.5)
    assert fp != job_fingerprint(
        base.with_optimizations(OptimizationConfig.all()),
        "compress", 0.5)


def test_code_version_invalidates():
    config = SimConfig.paper()
    assert (job_fingerprint(config, "compress", 0.5, version="aaaa")
            != job_fingerprint(config, "compress", 0.5, version="bbbb"))
