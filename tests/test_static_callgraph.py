"""Call graph construction, SCCs and the two interprocedural lints."""

from repro import workloads
from repro.analysis.static.callgraph import build_call_graph
from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.lint import lint_counts, lint_program
from repro.asm import assemble

CALLS = """
main:
    jal  helper
    jal  helper
    li   $v0, 10
    syscall
    halt
helper:
    addi $t0, $t0, 1
    jr   $ra
"""

RECURSIVE = """
main:
    li   $a0, 3
    jal  down
    halt
down:
    blez $a0, done
    addi $a0, $a0, -1
    addi $sp, $sp, -4
    sw   $ra, 0($sp)
    jal  down
    lw   $ra, 0($sp)
    addi $sp, $sp, 4
done:
    jr   $ra
"""

MUTUAL = """
main:
    li   $a0, 4
    jal  even
    halt
even:
    blez $a0, even_done
    addi $a0, $a0, -1
    addi $sp, $sp, -4
    sw   $ra, 0($sp)
    jal  odd
    lw   $ra, 0($sp)
    addi $sp, $sp, 4
even_done:
    jr   $ra
odd:
    blez $a0, odd_done
    addi $a0, $a0, -1
    addi $sp, $sp, -4
    sw   $ra, 0($sp)
    jal  even
    lw   $ra, 0($sp)
    addi $sp, $sp, 4
odd_done:
    jr   $ra
"""

UNCALLED = """
main:
    li   $v0, 10
    syscall
    halt
orphan:
    addi $t0, $t0, 1
    jr   $ra
"""

FALLS_OFF = """
main:
    jal  leaky
    jal  sink
    li   $v0, 10
    syscall
    halt
leaky:
    addi $t0, $t0, 1
sink:
    jr   $ra
"""


def _graph(src):
    cfg = build_cfg(assemble(src))
    return cfg, build_call_graph(cfg)


def test_direct_calls_resolved():
    cfg, graph = _graph(CALLS)
    helper = cfg.program.symbols["helper"]
    main = cfg.program.symbols["main"]
    assert set(graph.functions) == {main, helper}
    assert graph.callees(main) == [helper]
    info = graph.functions[main]
    assert len(info.call_sites) == 2
    assert all(site.direct and site.callees == (helper,)
               for site in info.call_sites)
    assert graph.functions[helper].returns
    assert graph.functions[helper].name == "helper"


def test_containing_maps_pcs_to_extents():
    cfg, graph = _graph(CALLS)
    helper = cfg.program.symbols["helper"]
    assert graph.containing(helper) == helper
    assert graph.containing(helper + 4) == helper
    assert graph.containing(cfg.program.symbols["main"] + 4) \
        == cfg.program.symbols["main"]


def test_self_recursion_is_an_scc_self_loop():
    cfg, graph = _graph(RECURSIVE)
    down = cfg.program.symbols["down"]
    assert (down, down) in graph.edges
    assert down in graph.recursive_functions()
    # a self loop alone is a singleton SCC: recursion is detected via
    # the explicit self edge, not component size.
    assert frozenset({down}) in graph.sccs()


def test_mutual_recursion_scc():
    cfg, graph = _graph(MUTUAL)
    even = cfg.program.symbols["even"]
    odd = cfg.program.symbols["odd"]
    recursive = graph.recursive_functions()
    assert even in recursive and odd in recursive
    assert any(component >= {even, odd}
               for component in graph.sccs())


def test_reachability_from_root():
    cfg, graph = _graph(UNCALLED)
    # `orphan` only becomes a discovered function via a call; with no
    # call anywhere it folds into main's extent — build a variant with
    # a call to materialise it, then check the direct case.
    assert graph.reachable() == {cfg.program.symbols["main"]}


def test_unreachable_function_lint():
    src = UNCALLED.replace("main:", "main:\n    jal used\n") + """
used:
    jal  orphan_caller_nothing
    jr   $ra
orphan_caller_nothing:
    jr   $ra
"""
    cfg = build_cfg(assemble(src))
    graph = build_call_graph(cfg)
    findings = lint_program(cfg, graph)
    counts = lint_counts(findings)
    assert counts.get("unreachable-function", 0) == 0

    # now one genuinely uncalled function: `lonely` is not a jal
    # target itself, so its code folds into dead_fn_target's extent —
    # and that discovered function (only ever called from inside its
    # own extent) is what the lint reports as unreachable.
    cfg2 = build_cfg(assemble("""
main:
    jal  used
    li   $v0, 10
    syscall
    halt
used:
    jr   $ra
dead_fn_target:
    jr   $ra
lonely:
    jal  dead_fn_target
    jr   $ra
"""))
    graph2 = build_call_graph(cfg2)
    findings2 = lint_program(cfg2, graph2)
    rules = {(f.rule, f.pc) for f in findings2}
    dead = cfg2.program.symbols["dead_fn_target"]
    assert ("unreachable-function", dead) in rules


def test_missing_return_lint():
    cfg = build_cfg(assemble(FALLS_OFF))
    graph = build_call_graph(cfg)
    leaky = cfg.program.symbols["leaky"]
    assert graph.functions[leaky].fall_off
    findings = lint_program(cfg, graph)
    assert any(f.rule == "missing-return"
               and graph.containing(f.pc) == leaky
               for f in findings)


def test_indirect_call_with_zero_label_candidates():
    # A jalr with no resolution over-approximates to every known entry;
    # with no entries beyond the root that is the root alone.
    cfg = build_cfg(assemble("""
main:
    la   $t0, main
    jalr $ra, $t0
    halt
"""))
    graph = build_call_graph(cfg)
    main = cfg.program.symbols["main"]
    assert set(graph.functions) == {main}
    (site,) = graph.functions[main].call_sites
    assert not site.direct
    assert site.callees == (main,)
    assert graph.reachable() == {main}


def test_resolved_indirect_calls_narrow_the_edges():
    src = """
main:
    la   $t0, target
    jalr $ra, $t0
    li   $v0, 10
    syscall
    halt
target:
    jr   $ra
decoy:
    jr   $ra
"""
    cfg = build_cfg(assemble(src))
    target = cfg.program.symbols["target"]
    decoy = cfg.program.symbols["decoy"]
    # force `decoy` to be discovered as a function via an unrelated jal
    src2 = src.replace("main:", "main:\n    beq $t1, $zero, skipcall\n"
                                "    jal decoy\nskipcall:")
    cfg2 = build_cfg(assemble(src2))
    jalr_pc = next(i.pc for i in cfg2.program.instructions
                   if i.op.value == "jalr")
    unresolved = build_call_graph(cfg2)
    resolved = build_call_graph(
        cfg2, {jalr_pc: (cfg2.program.symbols["target"],)})
    main2 = cfg2.program.symbols["main"]
    target2 = cfg2.program.symbols["target"]
    decoy2 = cfg2.program.symbols["decoy"]
    # unresolved: the jalr over-approximates to every *known* entry
    # (target is not one — only a resolution makes it a function).
    assert target2 not in unresolved.functions
    assert set(unresolved.callees(main2)) == set(unresolved.functions)
    assert decoy2 in unresolved.callees(main2)
    # resolved: target becomes a discovered function and the only
    # indirect callee.
    assert target2 in resolved.functions
    assert target2 in resolved.callees(main2)
    (site,) = [s for s in resolved.functions[main2].call_sites
               if not s.direct]
    assert site.callees == (target2,)
    del target, decoy


def test_all_workloads_have_connected_call_graphs():
    for name in workloads.names():
        cfg = build_cfg(workloads.build(name, 0.2))
        graph = build_call_graph(cfg)
        findings = lint_program(cfg, graph)
        counts = lint_counts(findings)
        assert counts.get("unreachable-function", 0) == 0, name
        assert counts.get("missing-return", 0) == 0, name
        assert graph.reachable() == set(graph.functions), name
