"""Checkpoint-repair storage tests."""

from dataclasses import replace

import pytest

from repro.core.clusters import CheckpointStore
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.errors import ConfigError
from tests.helpers import run_asm


def test_acquire_free_when_capacity_available():
    store = CheckpointStore(2)
    assert store.acquire(10) == 10
    store.commit(50)
    assert store.acquire(11) == 11
    store.commit(60)


def test_acquire_stalls_when_full():
    store = CheckpointStore(2)
    store.acquire(0)
    store.commit(50)
    store.acquire(0)
    store.commit(60)
    # Both checkpoints live; the next branch waits for the oldest.
    assert store.acquire(10) == 50
    assert store.stalls == 1


def test_resolved_checkpoints_reclaim():
    store = CheckpointStore(1)
    store.acquire(0)
    store.commit(5)
    # By cycle 6 the single checkpoint is free again.
    assert store.acquire(6) == 6
    assert store.stalls == 0


def test_reclaim_is_in_allocation_order():
    """A circular buffer: a checkpoint cannot free before its
    predecessors even if its branch resolved earlier."""
    store = CheckpointStore(2)
    store.acquire(0)
    store.commit(100)      # old branch resolves late
    store.acquire(0)
    store.commit(20)       # younger branch resolves early ...
    # ... but its slot is behind the older one:
    assert store.acquire(0) == 100


def test_config_validation():
    with pytest.raises(ConfigError):
        SimConfig(max_checkpoints=0)


BRANCHY = """
main:
    li   $t9, 400
loop:
    andi $t1, $t0, 3
    beq  $t1, $zero, a
a:  andi $t2, $t0, 5
    beq  $t2, $zero, b
b:  addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def test_scarce_checkpoints_throttle_pipeline():
    _, trace = run_asm(BRANCHY)
    plenty = PipelineModel(SimConfig.tiny()).run(trace, "t", "r")
    scarce = PipelineModel(replace(SimConfig.tiny(),
                                   max_checkpoints=2)).run(trace, "t", "r")
    assert scarce.cycles >= plenty.cycles
    assert scarce.ipc <= plenty.ipc


def test_more_checkpoints_never_hurt():
    _, trace = run_asm(BRANCHY)
    cycles = []
    for capacity in (1, 4, 64):
        model = PipelineModel(replace(SimConfig.tiny(),
                                      max_checkpoints=capacity))
        cycles.append(model.run(trace, "t", "r").cycles)
    assert cycles[0] >= cycles[1] >= cycles[2]


def test_stall_counter_visible():
    _, trace = run_asm(BRANCHY)
    model = PipelineModel(replace(SimConfig.tiny(), max_checkpoints=1))
    model.run(trace, "t", "r")
    assert model.checkpoints.stalls > 0
