"""Translation validation over real pass output: every optimization
configuration must verify clean on segments the fill unit actually
builds from the seed workloads."""

import pytest

from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.machine.executor import Executor
from repro.tracecache.cache import TraceCache, TraceCacheConfig
from repro.verify import SegmentVerifier, check_equivalence
from repro.workloads import build
from tests.helpers import build_segments

#: the asm kernel exercising every rewrite at once: move chains,
#: cross-block ADDI chains, shift+add address math, stores, branches.
KERNEL = """
main:
    addi $t0, $zero, 5
    addi $t1, $t0, 0
    addi $t2, $t1, 4
    beq  $zero, $zero, next
next:
    addi $t3, $t2, 4
    sll  $t4, $t3, 2
    add  $t5, $t4, $sp
    sw   $t3, 0($t5)
    halt
"""

ALL_CONFIGS = ["moves", "reassoc", "scaled_adds", "placement",
               "cse", "dead_code", "all", "extended"]


def verify_built_segments(source, opts, **kw):
    verifier = SegmentVerifier(opts)
    program, trace, _ = build_segments(source, opts, **kw)
    bias = BiasTable(64, threshold=4)
    unit = FillUnit(FillUnitConfig(latency=1, optimizations=opts),
                    TraceCache(TraceCacheConfig(num_sets=64, assoc=4)),
                    bias)
    collector = FillCollector(bias, 16, 3)
    for record in trace:
        if record.instr.is_cond_branch():
            bias.record(record.pc, record.taken)
        for candidate in collector.add(record):
            original = unit.assemble_segment(candidate)
            optimized = unit.build_segment(candidate)
            verifier.check(original, optimized)
    return verifier.report


@pytest.mark.parametrize("name", ALL_CONFIGS)
def test_each_config_clean_on_kernel(name):
    opts = (OptimizationConfig.all() if name == "all"
            else OptimizationConfig.extended() if name == "extended"
            else OptimizationConfig.only(name))
    report = verify_built_segments(KERNEL, opts)
    assert report.segments_checked > 0
    assert report.violations == 0, report.render()


@pytest.mark.parametrize("bench", ["compress", "li"])
def test_seed_workloads_verify_clean(bench):
    """The acceptance bar: compress and li under the paper's combined
    configuration produce zero violations."""
    opts = OptimizationConfig.all()
    verifier = SegmentVerifier(opts)
    program = build(bench, 0.2)
    trace = Executor(program).run()
    bias = BiasTable(64, threshold=4)
    unit = FillUnit(FillUnitConfig(latency=1, optimizations=opts),
                    TraceCache(TraceCacheConfig(num_sets=64, assoc=4)),
                    bias)
    collector = FillCollector(bias, 16, 3)
    for record in trace:
        if record.instr.is_cond_branch():
            bias.record(record.pc, record.taken)
        for candidate in collector.add(record):
            original = unit.assemble_segment(candidate)
            optimized = unit.build_segment(candidate)
            verifier.check(original, optimized)
    assert verifier.report.segments_checked > 100
    assert verifier.report.violations == 0, verifier.report.render()


def test_identical_segments_are_equivalent():
    _, _, segments = build_segments(KERNEL, OptimizationConfig.none())
    for segment in segments:
        violations, _, _ = check_equivalence(segment, segment.clone())
        assert violations == []


def test_report_render_mentions_counts():
    opts = OptimizationConfig.all()
    report = verify_built_segments(KERNEL, opts)
    text = report.render()
    assert "segments checked" in text
    assert "violations: 0" in text


def test_archive_roundtrip_preserves_verification(tmp_path):
    """Segments survive the JSONL archive losslessly: linting archived
    pairs finds exactly what linting live pairs does (nothing)."""
    from repro.verify.archive import read_pairs, write_pair

    opts = OptimizationConfig.all()
    _, trace, _ = build_segments(KERNEL, opts)
    bias = BiasTable(64, threshold=4)
    unit = FillUnit(FillUnitConfig(latency=1, optimizations=opts),
                    TraceCache(TraceCacheConfig(num_sets=64, assoc=4)),
                    bias)
    collector = FillCollector(bias, 16, 3)
    path = tmp_path / "pairs.jsonl"
    pairs = 0
    with open(path, "w") as handle:
        for record in trace:
            for candidate in collector.add(record):
                original = unit.assemble_segment(candidate)
                optimized = unit.build_segment(candidate)
                write_pair(handle, original, optimized,
                           meta={"benchmark": "kernel"})
                pairs += 1
    assert pairs > 0
    verifier = SegmentVerifier(opts)
    seen = 0
    for original, optimized, meta in read_pairs(str(path)):
        assert meta["benchmark"] == "kernel"
        assert verifier.check(original, optimized) == []
        seen += 1
    assert seen == pairs
