"""Set-associative cache model tests."""

import pytest

from repro.cache.setassoc import CacheStats, SetAssocCache
from repro.errors import ConfigError


def make(size=1024, assoc=2, line=32):
    return SetAssocCache(size, assoc, line, "test")


def test_geometry():
    cache = make()
    assert cache.num_sets == 1024 // (2 * 32)
    assert cache.resident_lines() == 0


def test_invalid_geometry_rejected():
    with pytest.raises(ConfigError):
        SetAssocCache(1000, 2, 32)     # size not divisible
    with pytest.raises(ConfigError):
        SetAssocCache(1024, 3, 32)     # assoc not a power of two
    with pytest.raises(ConfigError):
        SetAssocCache(1024, 2, 24)     # line not a power of two


def test_first_access_misses_then_hits():
    cache = make()
    assert cache.access(0x100) is False
    assert cache.access(0x100) is True
    assert cache.access(0x11F) is True      # same 32-byte line
    assert cache.access(0x120) is False     # next line


def test_stats_track_hits_and_misses():
    cache = make()
    cache.access(0)
    cache.access(0)
    cache.access(64)
    assert cache.stats.accesses == 3
    assert cache.stats.hits == 1
    assert cache.stats.misses == 2
    assert cache.stats.hit_rate == pytest.approx(1 / 3)


def test_lru_eviction_order():
    cache = make(size=128, assoc=2, line=32)  # 2 sets
    set_stride = 2 * 32  # addresses mapping to set 0
    a, b, c = 0, set_stride, 2 * set_stride
    cache.access(a)
    cache.access(b)
    cache.access(a)          # a becomes MRU
    cache.access(c)          # evicts b (LRU)
    assert cache.probe(a)
    assert not cache.probe(b)
    assert cache.probe(c)


def test_hit_refreshes_lru():
    cache = make(size=128, assoc=2, line=32)
    stride = 64
    cache.access(0)
    cache.access(stride)
    cache.access(0)              # refresh 0
    cache.access(2 * stride)     # should evict `stride`
    assert cache.probe(0)
    assert not cache.probe(stride)


def test_probe_does_not_allocate_or_count():
    cache = make()
    assert cache.probe(0x40) is False
    assert cache.stats.accesses == 0
    assert cache.access(0x40) is False  # still a miss


def test_fill_installs_without_counting():
    cache = make()
    cache.fill(0x40)
    assert cache.stats.accesses == 0
    assert cache.access(0x40) is True


def test_invalidate():
    cache = make()
    cache.access(0x80)
    assert cache.invalidate(0x80) is True
    assert cache.invalidate(0x80) is False
    assert cache.access(0x80) is False


def test_flush_keeps_stats():
    cache = make()
    cache.access(0)
    cache.flush()
    assert cache.resident_lines() == 0
    assert cache.stats.accesses == 1


def test_distinct_sets_do_not_conflict():
    cache = make(size=128, assoc=2, line=32)
    # lines 0 and 1 map to different sets
    cache.access(0)
    cache.access(32)
    cache.access(0)
    assert cache.stats.hits == 1
    assert cache.resident_lines() == 2


def test_direct_mapped_cache():
    cache = SetAssocCache(64, 1, 32, "dm")
    cache.access(0)
    cache.access(64)    # conflicts in a direct-mapped 2-set cache
    assert not cache.probe(0)


def test_stats_reset():
    stats = CacheStats(accesses=5, hits=2)
    stats.reset()
    assert stats.accesses == 0 and stats.hits == 0
    assert stats.hit_rate == 0.0
