"""Pre-decode bit-field tests (the paper's 7 bits per instruction)."""

import pytest

from repro.errors import SegmentError
from repro.fillunit.predecode import (PreDecode, PREDECODE_BITS,
                                      encode_segment, storage_cost_bytes)
from repro.fillunit.opts.base import OptimizationConfig
from tests.helpers import build_segments


def test_pack_unpack_roundtrip_exhaustive():
    for field in range(1 << PREDECODE_BITS):
        assert PreDecode.unpack(field).pack() == field


def test_pack_rejects_wide_block():
    with pytest.raises(SegmentError):
        PreDecode(True, True, False, False, False, block=4).pack()


def test_unpack_rejects_wide_field():
    with pytest.raises(SegmentError):
        PreDecode.unpack(1 << 7)
    with pytest.raises(SegmentError):
        PreDecode.unpack(-1)


def test_paper_storage_arithmetic():
    """2K lines x 16 instructions x 7 bits = 28KB, exactly the paper's
    trace cache storage breakdown (156KB total = 128KB instructions
    + 28KB pre-decode)."""
    assert storage_cost_bytes() == 28 * 1024
    assert storage_cost_bytes() + 2048 * 16 * 4 == 156 * 1024


def test_encode_real_segment():
    _, _, segments = build_segments("""
    main:
        addi $t0, $s0, 4     # dest t0, src live-in
        add  $t1, $t0, $s1   # src0 internal (t0), src1 live-in
        sw   $t1, 0($sp)     # no dest, src0 live-in (sp), src1 internal
        addi $t0, $t0, 1     # overwrites t0 (first def not live-out)
        halt
    """, OptimizationConfig.none())
    seg = segments[0]
    fields = [PreDecode.unpack(f) for f in encode_segment(seg)]
    assert fields[0].has_dest and not fields[0].dest_liveout
    assert fields[1].src0_internal and not fields[1].src1_internal
    assert not fields[2].has_dest
    assert fields[3].dest_liveout          # the final t0 definition
    assert all(f.block == 0 for f in fields)


def test_encode_block_numbers():
    _, _, segments = build_segments("""
    main:
        addi $t0, $t0, 1
        beq  $zero, $t9, a
    a:
        addi $t0, $t0, 1
        beq  $zero, $t9, b
    b:
        addi $t0, $t0, 1
        halt
    """, OptimizationConfig.none())
    fields = [PreDecode.unpack(f) for f in encode_segment(segments[0])]
    assert [f.block for f in fields] == [0, 0, 1, 1, 2, 2]


def test_encode_requires_dependency_info():
    from repro.tracecache.segment import TraceSegment
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Op
    seg = TraceSegment(start_pc=0,
                       instrs=[Instruction(Op.NOP, pc=0)])
    with pytest.raises(SegmentError):
        encode_segment(seg)
