"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

from repro.asm import assemble
from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.machine.executor import Executor
from repro.tracecache.cache import TraceCache, TraceCacheConfig


def run_asm(source: str, max_instructions: int = 200_000):
    """Assemble and functionally execute a program; returns
    (program, trace)."""
    program = assemble(source)
    trace = Executor(program).run(max_instructions)
    return program, trace


def build_segments(source: str, optimizations=None, max_instrs: int = 16,
                   max_cond: int = 3, promote_all: bool = False):
    """Assemble *source*, run it, and build optimized trace segments
    from the full retire stream.

    Returns (program, trace, [TraceSegment]). With ``promote_all``,
    every conditional branch is treated as promoted (bias threshold 1
    after pre-warming), useful to pack long segments deterministically.
    """
    program = assemble(source)
    trace = Executor(program).run()
    bias = BiasTable(64, threshold=1 if promote_all else 64)
    if promote_all:
        for record in trace:
            if record.instr.is_cond_branch():
                bias.record(record.pc, record.taken)
                bias.record(record.pc, record.taken)
    opts = optimizations if optimizations is not None \
        else OptimizationConfig.none()
    unit = FillUnit(FillUnitConfig(max_instrs=max_instrs,
                                   max_cond_branches=max_cond,
                                   latency=1, optimizations=opts),
                    TraceCache(TraceCacheConfig(
                        num_sets=64, assoc=4, max_instrs=max_instrs,
                        max_cond_branches=max_cond)),
                    bias)
    segments = []
    collector = FillCollector(bias, max_instrs, max_cond)
    for record in trace:
        for candidate in collector.add(record):
            segments.append(unit.build_segment(candidate))
    return program, trace, segments
