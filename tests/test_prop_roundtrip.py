"""Property-based round-trip tests: encode/decode and asm/disasm."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.isa.disasm import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Op, op_info

regs = st.integers(min_value=0, max_value=31)
imm16 = st.integers(min_value=-32768, max_value=32767)
shamt = st.integers(min_value=0, max_value=31)
branch_off = st.integers(min_value=-8192, max_value=8191).map(lambda w: w * 4)
jump_target = st.integers(min_value=0, max_value=(1 << 20)).map(lambda w: w * 4)

_ENCODABLE = [op for op in Op]


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(_ENCODABLE))
    fmt = op_info(op).format
    if fmt is Format.R3:
        return Instruction(op, rd=draw(regs), rs=draw(regs), rt=draw(regs))
    if fmt is Format.R2I:
        return Instruction(op, rd=draw(regs), rs=draw(regs), imm=draw(imm16))
    if fmt is Format.SHIFT:
        return Instruction(op, rd=draw(regs), rs=draw(regs), imm=draw(shamt))
    if fmt is Format.LUI:
        return Instruction(op, rd=draw(regs), imm=draw(imm16))
    if fmt is Format.LOAD:
        return Instruction(op, rd=draw(regs), rs=draw(regs), imm=draw(imm16))
    if fmt is Format.STORE:
        return Instruction(op, rt=draw(regs), rs=draw(regs), imm=draw(imm16))
    if fmt in (Format.LOADX, Format.STOREX):
        return Instruction(op, rd=draw(regs), rs=draw(regs), rt=draw(regs))
    if fmt is Format.BR2:
        return Instruction(op, rs=draw(regs), rt=draw(regs),
                           imm=draw(branch_off))
    if fmt is Format.BR1:
        return Instruction(op, rs=draw(regs), imm=draw(branch_off))
    if fmt is Format.J:
        return Instruction(op, imm=draw(jump_target))
    if fmt is Format.JR:
        return Instruction(op, rs=draw(regs))
    if fmt is Format.JALR:
        return Instruction(op, rd=draw(regs), rs=draw(regs))
    return Instruction(op)


@given(instructions())
@settings(max_examples=300)
def test_encode_decode_roundtrip(instr):
    decoded = decode(encode(instr))
    if (instr.op is Op.SLL and instr.rd == 0 and instr.rs == 0
            and instr.imm == 0):
        # `sll $zero, $zero, 0` IS the canonical NOP encoding (word 0),
        # the classic MIPS alias; both are architectural no-ops.
        assert decoded.op is Op.NOP
        return
    assert decoded.op is instr.op
    assert decoded.rd == instr.rd
    assert decoded.rs == instr.rs
    assert decoded.rt == instr.rt
    assert decoded.imm == instr.imm


@given(instructions())
@settings(max_examples=300)
def test_disassemble_reassemble_roundtrip(instr):
    """The disassembler's output is valid assembler input producing an
    identical instruction (branch displacements resolve numerically)."""
    text = disassemble(instr, show_annotations=False)
    program = assemble(".text\n" + text + "\n")
    back = program.instructions[0]
    assert back.op is instr.op
    assert back.rd == instr.rd
    assert back.rs == instr.rs
    assert back.rt == instr.rt
    assert back.imm == instr.imm


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=300)
def test_decode_never_crashes_and_reencodes(word):
    """Decoding either raises a clean EncodingError or produces an
    instruction that re-encodes to the same word (decode is a partial
    inverse of encode on the valid subset)."""
    from repro.errors import EncodingError
    try:
        instr = decode(word)
    except EncodingError:
        return
    # Unused fields of a valid encoding may be nonzero garbage; only
    # canonical encodings (from our encoder) must round-trip exactly.
    # One architected alias is allowed: `sll $zero, $zero, 0` re-encodes
    # to word 0, the canonical NOP (both are architectural no-ops).
    reencoded = encode(instr)
    back = decode(reencoded)
    assert back.op is instr.op or (
        back.op is Op.NOP and instr.dest() is None
        and not instr.is_ctrl() and not instr.is_mem())
