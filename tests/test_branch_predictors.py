"""Branch prediction complex tests: counters, PHTs, bias/promotion,
RAS, BTB, and the combined multiple-branch predictor."""

import pytest

from repro.branch.bias import BiasTable
from repro.branch.btb import BranchTargetBuffer
from repro.branch.counters import SaturatingCounterArray
from repro.branch.pht import GlobalHistory, PatternHistoryTable
from repro.branch.predictor import MultiBranchPredictor, PredictorConfig
from repro.branch.ras import ReturnAddressStack
from repro.errors import ConfigError


# --- saturating counters -------------------------------------------------

def test_counters_start_weakly_taken():
    array = SaturatingCounterArray(16)
    assert array.value(0) == 2
    assert array.predict(0) is True


def test_counter_training():
    array = SaturatingCounterArray(16)
    array.update(5, False)
    array.update(5, False)
    assert array.predict(5) is False
    array.update(5, True)
    array.update(5, True)
    assert array.predict(5) is True


def test_counter_saturation():
    array = SaturatingCounterArray(16)
    for _ in range(10):
        array.update(3, True)
    assert array.value(3) == 3
    for _ in range(10):
        array.update(3, False)
    assert array.value(3) == 0


def test_counter_index_folding():
    array = SaturatingCounterArray(16)
    array.update(16 + 3, False)   # aliases entry 3
    assert array.value(3) == 1


def test_counter_config_validation():
    with pytest.raises(ConfigError):
        SaturatingCounterArray(12)
    with pytest.raises(ConfigError):
        SaturatingCounterArray(16, bits=0)


def test_counter_reset():
    array = SaturatingCounterArray(8)
    array.update(0, True)
    array.reset()
    assert array.value(0) == 2


# --- PHT / history -------------------------------------------------------

def test_pht_learns_pattern():
    pht = PatternHistoryTable(256, history_bits=4)
    for _ in range(4):
        pht.update(0x1000, 0b1010, True)
    assert pht.predict(0x1000, 0b1010) is True
    # Different history maps to a different counter.
    for _ in range(4):
        pht.update(0x1000, 0b0101, False)
    assert pht.predict(0x1000, 0b0101) is False
    assert pht.predict(0x1000, 0b1010) is True


def test_global_history_shifts_and_masks():
    hist = GlobalHistory(4)
    for outcome in (True, False, True, True):
        hist.push(outcome)
    assert hist.value == 0b1011
    hist.push(False)
    assert hist.value == 0b0110  # oldest bit fell off
    hist.reset()
    assert hist.value == 0


# --- bias table / promotion ----------------------------------------------

def test_promotion_after_threshold_consecutive():
    bias = BiasTable(64, threshold=4)
    for _ in range(3):
        bias.record(0x100, True)
    assert not bias.is_promoted(0x100)
    bias.record(0x100, True)
    assert bias.is_promoted(0x100)
    assert bias.promoted_direction(0x100) is True
    assert bias.promotions == 1


def test_direction_change_resets_run_and_demotes():
    bias = BiasTable(64, threshold=3)
    for _ in range(3):
        bias.record(0x100, False)
    assert bias.is_promoted(0x100)
    bias.record(0x100, True)
    assert not bias.is_promoted(0x100)
    assert bias.demotions == 1
    # run restarts in the new direction
    bias.record(0x100, True)
    bias.record(0x100, True)
    assert bias.is_promoted(0x100)


def test_bias_aliasing_is_possible():
    """The table is tagless (a cost constraint, not an idealization):
    two branches 64 entries apart share state."""
    bias = BiasTable(64, threshold=2)
    bias.record(0x1000, True)
    bias.record(0x1000 + 64 * 4, True)
    assert bias.is_promoted(0x1000)


def test_bias_config_validation():
    with pytest.raises(ConfigError):
        BiasTable(63)
    with pytest.raises(ConfigError):
        BiasTable(64, threshold=0)


# --- RAS -----------------------------------------------------------------

def test_ras_lifo_order():
    ras = ReturnAddressStack(4)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None   # 1 was lost to overflow


# --- BTB -----------------------------------------------------------------

def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(64)
    assert btb.predict(0x1000) is None
    btb.update(0x1000, 0x2000)
    assert btb.predict(0x1000) == 0x2000


def test_btb_tag_disambiguates_aliases():
    btb = BranchTargetBuffer(64)
    btb.update(0x1000, 0x2000)
    aliased = 0x1000 + 64 * 4
    assert btb.predict(aliased) is None     # tag mismatch
    btb.update(aliased, 0x3000)
    assert btb.predict(0x1000) is None      # evicted by alias


# --- combined predictor ---------------------------------------------------

def test_skewed_table_sizes_default():
    predictor = MultiBranchPredictor()
    sizes = [pht.counters.entries for pht in predictor.phts]
    assert sizes == [65536, 16384, 8192]
    assert predictor.max_dynamic_branches == 3


def test_predictor_learns_biased_branch():
    predictor = MultiBranchPredictor(PredictorConfig().scaled(256))
    for _ in range(8):
        predictor.update_cond(0x1000, 0, True)
    assert predictor.predict_cond(0x1000, 0) is True


def test_per_position_tables_are_independent():
    predictor = MultiBranchPredictor(PredictorConfig().scaled(256))
    # Train position 0 toward taken; position 2's table is untouched
    # state for this pc/history (both start weakly taken though), so
    # train position 2 toward not-taken and check no interference.
    for _ in range(8):
        predictor.update_cond(0x2000, 0, True)
    # history now polluted; reset for a clean comparison
    predictor.history.reset()
    for _ in range(8):
        predictor.update_cond(0x2000, 2, False)
        predictor.history.reset()
    assert predictor.predict_cond(0x2000, 2) is False


def test_return_prediction_via_ras():
    predictor = MultiBranchPredictor(PredictorConfig().scaled(256))
    predictor.note_call(0x1004)
    assert predictor.predict_indirect(0x5000, is_return=True) == 0x1004


def test_indirect_prediction_via_btb():
    predictor = MultiBranchPredictor(PredictorConfig().scaled(256))
    assert predictor.predict_indirect(0x5000, is_return=False) is None
    predictor.train_indirect(0x5000, 0x7000)
    assert predictor.predict_indirect(0x5000, is_return=False) == 0x7000


def test_record_outcome_feeds_bias():
    config = PredictorConfig().scaled(256)
    config.promote_threshold = 2
    predictor = MultiBranchPredictor(config)
    predictor.record_outcome(0x100, True)
    predictor.record_outcome(0x100, True)
    assert predictor.bias.is_promoted(0x100)
