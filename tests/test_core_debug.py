"""Timing-trace debug facility tests."""

from repro.core.config import SimConfig
from repro.core.debug import TimingTrace
from repro.core.pipeline import PipelineModel
from tests.helpers import run_asm

LOOP = """
main:
    li   $t9, 30
loop:
    addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def capture(limit=50, start_seq=0):
    _, trace = run_asm(LOOP)
    model = PipelineModel(SimConfig.tiny())
    hook = TimingTrace(limit=limit, start_seq=start_seq)
    model.timing_hook = hook
    result = model.run(trace, "t", "r")
    return hook, result, trace


def test_capture_limited():
    hook, _, _ = capture(limit=10)
    assert len(hook) == 10


def test_records_cover_all_when_unbounded():
    hook, result, trace = capture(limit=10_000)
    assert len(hook) == len(trace) == result.instructions


def test_stage_ordering_invariants():
    hook, _, _ = capture(limit=200)
    for r in hook.records:
        assert r.fetch < r.rename <= r.complete < r.retire
        assert r.latency >= 3


def test_retire_in_order():
    hook, _, _ = capture(limit=200)
    retires = [r.retire for r in hook.records]
    assert retires == sorted(retires)


def test_start_seq_offset():
    hook, _, _ = capture(limit=5, start_seq=20)
    assert hook.records[0].seq == 20


def test_find_by_pc():
    hook, _, trace = capture(limit=10_000)
    loop_pc = trace[1].pc
    found = hook.find(loop_pc)
    assert len(found) > 5
    assert all(r.pc == loop_pc for r in found)


def test_render():
    hook, _, _ = capture(limit=5)
    text = hook.render()
    assert "seq" in text and "addi" in text
    # header + 5 records + the dropped-records summary line
    assert len(text.splitlines()) == 7
    assert f"({hook.dropped} records past the 5-record limit" in text


def test_dropped_counts_overflow():
    hook, result, _ = capture(limit=10)
    assert hook.dropped == result.instructions - 10
    # nothing dropped -> no summary line
    full, _, _ = capture(limit=10_000)
    assert full.dropped == 0
    assert "dropped" not in full.render()


def test_as_event_sink():
    from repro.telemetry import Telemetry

    _, trace = run_asm(LOOP)
    telemetry = Telemetry()
    sink = TimingTrace(limit=10_000)
    telemetry.attach(sink)
    model = PipelineModel(SimConfig.tiny(), telemetry=telemetry)
    result = model.run(trace, "t", "r")
    assert len(sink) == result.instructions
    for r in sink.records:
        assert r.fetch < r.rename <= r.complete < r.retire


def test_sink_and_hook_agree():
    from repro.telemetry import Telemetry

    _, trace = run_asm(LOOP)
    hook, _, _ = capture(limit=10_000)
    telemetry = Telemetry()
    sink = TimingTrace(limit=10_000)
    telemetry.attach(sink)
    model = PipelineModel(SimConfig.tiny(), telemetry=telemetry)
    model.run(trace, "t", "r")
    assert sink.records == hook.records


def test_default_hook_is_none():
    model = PipelineModel(SimConfig.tiny())
    assert model.timing_hook is None
