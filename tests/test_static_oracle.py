"""The opportunity oracle: dynamic transformations vs static bounds."""

import pytest

from repro import workloads
from repro.analysis.static import analyze_program
from repro.core.config import SimConfig
from repro.core.simulator import Simulator
from repro.errors import ConfigError
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.crosscheck import (
    OPT_CLASSES,
    OracleViolation,
    collect_dynamic_sites,
    cross_check,
)

SCALE = 0.3


def _trace_and_report(name, config):
    program = workloads.build(name, SCALE)
    report = analyze_program(program, name)
    trace = Simulator(config).trace_program(program)
    return report, trace


@pytest.mark.parametrize("name", ["compress", "li"])
def test_dynamic_sites_within_static_bounds(name):
    config = SimConfig.paper(OptimizationConfig.all())
    report, trace = _trace_and_report(name, config)
    check = cross_check(report, trace, config, name, "all")
    assert check.ok, check.render()
    for cls in OPT_CLASSES:
        assert check.dynamic_counts[cls] <= check.static_counts[cls]
    # The run genuinely transformed something — the bound is not
    # trivially satisfied by an idle fill unit.
    assert check.dynamic_counts["any_opt"] > 0
    assert "OK" in check.render()


@pytest.mark.parametrize("opts", ["moves", "reassoc", "scaled_adds"])
def test_each_paper_pass_individually(opts):
    config = SimConfig.paper(OptimizationConfig.only(opts))
    report, trace = _trace_and_report("compress", config)
    check = cross_check(report, trace, config, "compress", opts)
    assert check.ok, check.render()


def test_violation_names_opt_and_pc():
    """An (artificially) empty static report turns every transformed
    PC into a violation naming the class and address."""
    config = SimConfig.paper(OptimizationConfig.all())
    report, trace = _trace_and_report("compress", config)
    report.move_sites = []
    report.reassoc_sites = []
    report.scaled_sites = []
    check = cross_check(report, trace, config, "compress", "all")
    assert not check.ok
    assert check.violations
    for violation in check.violations:
        assert violation.opt in OPT_CLASSES
        assert f"{violation.pc:#x}" in violation.render()
    assert "ORACLE VIOLATION" in check.render()


def test_extended_config_is_rejected():
    config = SimConfig.paper(OptimizationConfig.extended())
    report, trace = _trace_and_report("compress", config)
    with pytest.raises(ConfigError):
        cross_check(report, trace, config, "compress", "extended")


def test_no_trace_cache_is_rejected():
    from dataclasses import replace
    config = replace(SimConfig.paper(OptimizationConfig.all()),
                     trace_cache_enabled=False)
    program = workloads.build("compress", SCALE)
    trace = Simulator(config).trace_program(program)
    with pytest.raises(ConfigError):
        collect_dynamic_sites(trace, config, "compress", "all")


def test_site_log_does_not_change_timing():
    """The opt_site_log side channel must leave cycle counts exactly
    as they were — it is bookkeeping, not modelling."""
    config = SimConfig.paper(OptimizationConfig.all())
    program = workloads.build("compress", SCALE)
    trace = Simulator(config).trace_program(program)
    plain = Simulator(config).run(trace, "compress", "all")
    logged, sites = collect_dynamic_sites(trace, config, "compress",
                                          "all")
    assert logged.cycles == plain.cycles
    assert logged.coverage == plain.coverage
    assert sites["any_opt"] == (sites["moves"] | sites["reassoc"]
                                | sites["scaled"])


def test_violation_render():
    violation = OracleViolation(opt="moves", pc=0x1234)
    assert "moves" in violation.render()
    assert "0x1234" in violation.render()
