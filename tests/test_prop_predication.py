"""Predication-specific equivalence property.

Dynamic predication is the one transformation whose equivalence claim
is *stronger* than on-path equivalence: the transformed segment must be
architecturally correct on EITHER outcome of the converted branch. The
straight-line replay of test_prop_equivalence cannot check that (it
ignores branch outcomes), so this suite executes both the original and
the transformed instruction lists under *hammock semantics* — honoring
conditional-branch skips — from hypothesis-generated register states
that drive the guards both ways.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import evaluate
from repro.machine.memory import Memory
from repro.machine.state import ArchState
from repro.machine.tracing import CommittedInstr
from repro.tracecache.cache import TraceCache, TraceCacheConfig

regs = st.integers(min_value=8, max_value=15)
small_imm = st.integers(min_value=-32, max_value=32)


def execute_hammock(instrs, state, memory):
    """Execute an instruction list honoring conditional-branch skips
    (targets resolved by PC within the list); other control flow is
    treated as straight-line."""
    by_pc = {instr.pc: idx for idx, instr in enumerate(instrs)}
    idx = 0
    while idx < len(instrs):
        instr = instrs[idx]
        effect = evaluate(instr, state.read_reg)
        value = effect.value
        if effect.mem is not None:
            if effect.mem.is_store:
                memory.store(effect.mem.addr, effect.mem.store_value,
                             effect.mem.size)
            else:
                value = memory.load(effect.mem.addr, effect.mem.size,
                                    effect.mem.signed)
        if effect.dest is not None:
            state.write_reg(effect.dest, value)
        if (instr.is_cond_branch() and effect.taken
                and effect.target in by_pc
                and by_pc[effect.target] > idx):
            idx = by_pc[effect.target]
        else:
            idx += 1


@st.composite
def hammock_programs(draw):
    """Straight-line code with single-instruction hammocks on
    compare-with-zero branches."""
    instrs = []
    pc = 0x1000

    def emit(instr):
        nonlocal pc
        instr.pc = pc
        instrs.append(instr)
        pc += 4

    for _ in range(draw(st.integers(min_value=2, max_value=6))):
        # some filler ALU work
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            emit(Instruction(draw(st.sampled_from(
                [Op.ADD, Op.XOR, Op.OR])), rd=draw(regs),
                rs=draw(regs), rt=draw(regs)))
        # a hammock: branch over one ALU instruction
        op = draw(st.sampled_from([Op.BEQ, Op.BNE]))
        emit(Instruction(op, rs=draw(regs), rt=0, imm=8))
        emit(Instruction(Op.ADDI, rd=draw(regs), rs=draw(regs),
                         imm=draw(small_imm)))
    emit(Instruction(Op.ADDI, rd=8, rs=8, imm=1))   # a tail instruction
    seeds = draw(st.lists(st.integers(min_value=-2, max_value=2),
                          min_size=8, max_size=8))
    return instrs, seeds


def committed_fallthrough(instrs):
    """Committed records for the all-fall-through execution (the path
    the fill unit would see when every hammock branch is not taken)."""
    return [CommittedInstr(idx, instr.pc, instr, instr.pc + 4)
            for idx, instr in enumerate(instrs)]


def seed_state(seeds):
    state = ArchState()
    for reg, value in zip(range(8, 16), seeds):
        state.write_reg(reg, value)
    return state


@given(hammock_programs())
@settings(max_examples=200, deadline=None)
def test_predicated_segments_correct_on_both_outcomes(program):
    instrs, seeds = program
    unit = FillUnit(
        FillUnitConfig(latency=1,
                       optimizations=OptimizationConfig.only("predication")),
        TraceCache(TraceCacheConfig(num_sets=16, assoc=2)),
        BiasTable(64))
    collector = FillCollector(BiasTable(64))
    segments = []
    for record in committed_fallthrough(instrs):
        for candidate in collector.add(record):
            segments.append(unit.build_segment(candidate))
    for tail in collector.flush():
        segments.append(unit.build_segment(tail))

    # The random seeds (-2..2, rich in zeros) drive the branch
    # conditions both ways across examples — including ways the
    # builder's fall-through path never took.
    ref_state = seed_state(seeds)
    opt_state = seed_state(seeds)
    ref_mem, opt_mem = Memory(), Memory()
    execute_hammock(instrs, ref_state, ref_mem)
    for segment in segments:
        segment.validate()
    transformed = [instr for segment in segments
                   for instr in segment.instrs]
    execute_hammock(transformed, opt_state, opt_mem)
    assert opt_state.regs == ref_state.regs


@given(hammock_programs())
@settings(max_examples=50, deadline=None)
def test_predication_drops_converted_branches_from_branch_lists(program):
    instrs, _ = program
    unit = FillUnit(
        FillUnitConfig(latency=1,
                       optimizations=OptimizationConfig.only("predication")),
        TraceCache(TraceCacheConfig(num_sets=16, assoc=2)),
        BiasTable(64))
    collector = FillCollector(BiasTable(64))
    for record in committed_fallthrough(instrs):
        for candidate in collector.add(record):
            segment = unit.build_segment(candidate)
            guarded = sum(1 for i in segment.instrs if i.guard is not None)
            squashed = sum(1 for i in segment.instrs
                           if i.op is Op.NOP)
            assert guarded == squashed
            # every surviving branch record points at a real branch
            for info in segment.branches:
                assert segment.instrs[info.index].is_cond_branch()
