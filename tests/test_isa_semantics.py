"""Functional semantics tests: every opcode, edge values, annotations."""

import pytest

from repro.errors import ExecutionError
from repro.isa.instruction import Instruction, ScaleAnnotation
from repro.isa.opcodes import Op
from repro.isa.semantics import evaluate, to_s32, to_u32


def make_reader(values: dict):
    return lambda reg: values.get(reg, 0)


def ev(instr, **regs):
    values = {int(k[1:]): v for k, v in regs.items()}
    return evaluate(instr, make_reader(values))


# --- helpers -----------------------------------------------------------

def test_to_s32_wraps():
    assert to_s32(0x7FFFFFFF) == 2147483647
    assert to_s32(0x80000000) == -2147483648
    assert to_s32(0xFFFFFFFF) == -1
    assert to_s32(1 << 32) == 0


def test_to_u32_wraps():
    assert to_u32(-1) == 0xFFFFFFFF
    assert to_u32(1 << 32) == 0


# --- ALU ---------------------------------------------------------------

def test_add_and_overflow_wraps():
    effect = ev(Instruction(Op.ADD, rd=3, rs=1, rt=2),
                r1=0x7FFFFFFF, r2=1)
    assert effect.dest == 3
    assert effect.value == -2147483648  # silent two's-complement wrap


def test_sub():
    assert ev(Instruction(Op.SUB, rd=3, rs=1, rt=2), r1=5, r2=9).value == -4


def test_logic_ops():
    assert ev(Instruction(Op.AND, rd=3, rs=1, rt=2),
              r1=0b1100, r2=0b1010).value == 0b1000
    assert ev(Instruction(Op.OR, rd=3, rs=1, rt=2),
              r1=0b1100, r2=0b1010).value == 0b1110
    assert ev(Instruction(Op.XOR, rd=3, rs=1, rt=2),
              r1=0b1100, r2=0b1010).value == 0b0110
    assert ev(Instruction(Op.NOR, rd=3, rs=1, rt=2),
              r1=0, r2=0).value == -1


def test_slt_signed_vs_unsigned():
    assert ev(Instruction(Op.SLT, rd=3, rs=1, rt=2), r1=-1, r2=0).value == 1
    assert ev(Instruction(Op.SLTU, rd=3, rs=1, rt=2), r1=-1, r2=0).value == 0


def test_mult_wraps():
    assert ev(Instruction(Op.MULT, rd=3, rs=1, rt=2),
              r1=100000, r2=100000).value == to_s32(100000 * 100000)


def test_div_truncates_toward_zero():
    assert ev(Instruction(Op.DIV, rd=3, rs=1, rt=2), r1=-7, r2=2).value == -3
    assert ev(Instruction(Op.DIV, rd=3, rs=1, rt=2), r1=7, r2=-2).value == -3


def test_div_by_zero_yields_zero():
    assert ev(Instruction(Op.DIV, rd=3, rs=1, rt=2), r1=7, r2=0).value == 0


def test_immediates_sign_extend():
    assert ev(Instruction(Op.ADDI, rd=3, rs=1, imm=-1), r1=5).value == 4
    assert ev(Instruction(Op.SLTI, rd=3, rs=1, imm=0), r1=-3).value == 1
    assert ev(Instruction(Op.SLTIU, rd=3, rs=1, imm=1), r1=0).value == 1


def test_shifts():
    assert ev(Instruction(Op.SLL, rd=3, rs=1, imm=4), r1=1).value == 16
    assert ev(Instruction(Op.SRL, rd=3, rs=1, imm=1), r1=-2).value == \
        0x7FFFFFFF
    assert ev(Instruction(Op.SRA, rd=3, rs=1, imm=1), r1=-2).value == -1


def test_variable_shifts_mask_amount():
    assert ev(Instruction(Op.SLLV, rd=3, rs=1, rt=2), r1=1, r2=33).value == 2
    assert ev(Instruction(Op.SRLV, rd=3, rs=1, rt=2), r1=4, r2=2).value == 1
    assert ev(Instruction(Op.SRAV, rd=3, rs=1, rt=2), r1=-8, r2=2).value == -2


def test_lui():
    assert ev(Instruction(Op.LUI, rd=3, imm=1)).value == 0x10000
    assert ev(Instruction(Op.LUI, rd=3, imm=-1)).value == to_s32(0xFFFF0000)


# --- memory ------------------------------------------------------------

def test_load_address_computation():
    effect = ev(Instruction(Op.LW, rd=3, rs=1, imm=-4), r1=0x1000)
    assert effect.mem is not None
    assert not effect.mem.is_store
    assert effect.mem.addr == 0xFFC
    assert effect.mem.size == 4 and effect.mem.signed


def test_load_sizes_and_signedness():
    assert ev(Instruction(Op.LBU, rd=3, rs=1, imm=0), r1=8).mem.signed \
        is False
    assert ev(Instruction(Op.LB, rd=3, rs=1, imm=0), r1=8).mem.size == 1
    assert ev(Instruction(Op.LHU, rd=3, rs=1, imm=0), r1=8).mem.size == 2


def test_indexed_load_address():
    effect = ev(Instruction(Op.LWX, rd=3, rs=1, rt=2), r1=0x100, r2=0x20)
    assert effect.mem.addr == 0x120


def test_store_effect():
    effect = ev(Instruction(Op.SW, rt=3, rs=1, imm=8), r1=0x100, r3=77)
    assert effect.mem.is_store
    assert effect.mem.addr == 0x108
    assert effect.mem.store_value == 77
    assert effect.dest is None


def test_indexed_store_value_in_rd():
    effect = ev(Instruction(Op.SWX, rd=3, rs=1, rt=2),
                r1=0x100, r2=4, r3=55)
    assert effect.mem.is_store and effect.mem.addr == 0x104
    assert effect.mem.store_value == 55


# --- scale annotation ----------------------------------------------------

def test_scaled_add_semantics():
    instr = Instruction(Op.ADD, rd=3, rs=1, rt=2,
                        scale=ScaleAnnotation(src=9, shamt=2))
    effect = ev(instr, r1=999, r2=10, r9=5)
    # reads r9 << 2, NOT r1
    assert effect.value == 30


def test_scaled_load_semantics():
    instr = Instruction(Op.LWX, rd=3, rs=1, rt=2,
                        scale=ScaleAnnotation(src=9, shamt=3))
    effect = ev(instr, r1=999, r2=0x100, r9=2)
    assert effect.mem.addr == 0x110


def test_scaled_displacement_load():
    instr = Instruction(Op.LW, rd=3, rs=1, imm=4,
                        scale=ScaleAnnotation(src=9, shamt=2))
    effect = ev(instr, r1=999, r9=0x40)
    assert effect.mem.addr == 0x104


def test_scaled_store_semantics():
    instr = Instruction(Op.SW, rt=3, rs=1, imm=0,
                        scale=ScaleAnnotation(src=9, shamt=1))
    effect = ev(instr, r1=999, r9=0x80, r3=5)
    assert effect.mem.addr == 0x100
    assert effect.mem.store_value == 5


# --- control -------------------------------------------------------------

@pytest.mark.parametrize("op,r1,r2,taken", [
    (Op.BEQ, 5, 5, True), (Op.BEQ, 5, 6, False),
    (Op.BNE, 5, 6, True), (Op.BNE, 5, 5, False),
])
def test_two_register_branches(op, r1, r2, taken):
    instr = Instruction(op, rs=1, rt=2, imm=16, pc=0x1000)
    effect = ev(instr, r1=r1, r2=r2)
    assert effect.is_ctrl and effect.taken == taken
    assert effect.target == (0x1010 if taken else 0x1004)


@pytest.mark.parametrize("op,value,taken", [
    (Op.BLEZ, 0, True), (Op.BLEZ, 1, False), (Op.BLEZ, -1, True),
    (Op.BGTZ, 1, True), (Op.BGTZ, 0, False),
    (Op.BLTZ, -1, True), (Op.BLTZ, 0, False),
    (Op.BGEZ, 0, True), (Op.BGEZ, -1, False),
])
def test_compare_zero_branches(op, value, taken):
    instr = Instruction(op, rs=1, imm=8, pc=0x2000)
    assert ev(instr, r1=value).taken == taken


def test_jump_and_link():
    effect = ev(Instruction(Op.JAL, imm=0x4000, pc=0x1000))
    assert effect.target == 0x4000
    assert effect.dest == 31 and effect.value == 0x1004


def test_jr_target_from_register():
    effect = ev(Instruction(Op.JR, rs=31, pc=0x1000), r31=0x2040)
    assert effect.target == 0x2040


def test_jalr_links_and_jumps():
    effect = ev(Instruction(Op.JALR, rd=5, rs=9, pc=0x1000), r9=0x3000)
    assert effect.target == 0x3000
    assert effect.dest == 5 and effect.value == 0x1004


def test_halt_and_syscall():
    assert ev(Instruction(Op.HALT)).halt
    sys_effect = ev(Instruction(Op.SYSCALL))
    assert sys_effect.serialize and not sys_effect.halt


def test_nop_has_no_effect():
    effect = ev(Instruction(Op.NOP))
    assert effect.dest is None and effect.mem is None \
        and not effect.is_ctrl and not effect.halt
