"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "m88ksim" in out and "gnuchess" in out
    assert out.count("\n") >= 16


def test_run(capsys):
    code, out = run_cli(capsys, "run", "compress", "--scale", "0.1",
                        "--opts", "moves")
    assert code == 0
    assert "IPC" in out and "transformed" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "tex", "--scale", "0.1")
    assert code == 0
    assert "baseline" in out
    for name in ("moves", "reassoc", "scaled_adds", "placement", "all"):
        assert name in out


def test_figures_subset(capsys):
    code, out = run_cli(capsys, "figures", "--scale", "0.05",
                        "--only", "3")
    assert code == 0
    assert "Figure 3" in out and "paper claim" in out


def test_tables(capsys):
    code, out = run_cli(capsys, "tables", "--scale", "0.05")
    assert code == 0
    assert "Table 1" in out and "Table 2" in out


def test_trace_exports_perfetto_timeline(tmp_path, capsys):
    import json
    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.prom"
    hostprof = tmp_path / "prof.json"
    code, text = run_cli(capsys, "trace", "compress", "--scale", "0.1",
                         "--out", str(out),
                         "--metrics-out", str(metrics),
                         "--hostprof-out", str(hostprof))
    assert code == 0
    assert "perfetto" in text and "host-time profile" in text
    events = json.loads(out.read_text())["traceEvents"]
    assert events
    for event in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event
    names = {e["name"] for e in events}
    assert {"segment.collect", "segment.optimize", "segment.verify",
            "tc.insert", "tc.reuse"} <= names
    assert metrics.read_text().endswith("# EOF\n")
    prof = json.loads(hostprof.read_text())
    assert any(s.startswith("stage.") for s in prof["scopes"])


def test_trace_no_verify_drops_verify_spans(tmp_path, capsys):
    import json
    out = tmp_path / "trace.json"
    code, _ = run_cli(capsys, "trace", "compress", "--scale", "0.05",
                      "--no-verify", "--out", str(out))
    assert code == 0
    names = {e["name"]
             for e in json.loads(out.read_text())["traceEvents"]}
    assert "segment.verify" not in names
    assert "segment.optimize" in names


def test_asm_command(tmp_path, capsys):
    source = tmp_path / "kernel.s"
    source.write_text("""
    main:
        li   $a0, 9
        li   $v0, 1
        syscall
        halt
    """)
    code, out = run_cli(capsys, "asm", str(source), "--simulate",
                        "--opts", "none")
    assert code == 0
    assert "[9]" in out and "IPC" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_analyze(capsys):
    code, out = run_cli(capsys, "analyze", "compress", "li",
                        "--scale", "0.2")
    assert code == 0
    assert "compress" in out and "li" in out
    assert "0 errors, 0 warnings" in out


def test_analyze_unknown_benchmark(capsys):
    code, out = run_cli(capsys, "analyze", "doom")
    assert code == 2
    assert "unknown benchmark" in out


def test_analyze_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--write-baseline", str(baseline))
    assert code == 0 and baseline.exists()
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--baseline", str(baseline))
    assert code == 0
    # A scale mismatch makes the comparison meaningless: usage error.
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.3",
                        "--baseline", str(baseline))
    assert code == 2
    assert "matching --scale" in out


def test_analyze_baseline_regression_fails(tmp_path, capsys):
    import json
    baseline = tmp_path / "baseline.json"
    run_cli(capsys, "analyze", "compress", "--scale", "0.2",
            "--write-baseline", str(baseline))
    payload = json.loads(baseline.read_text())
    # Pretend the baseline had even fewer findings than now (any new
    # finding relative to the recorded counts must fail the gate).
    payload["benchmarks"]["compress"]["lint"] = {}
    recorded = payload["benchmarks"]["compress"]
    recorded["lint"] = {}
    baseline.write_text(json.dumps(payload))
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--baseline", str(baseline))
    # The workloads are lint-clean, so nothing regresses even against
    # an empty record; force a fake regression instead.
    assert code == 0
    recorded["lint"] = {"dead-write": -1}
    baseline.write_text(json.dumps(payload))
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--baseline", str(baseline))
    assert code == 1
    assert "regressed" in out and "FAIL" in out


def test_analyze_baseline_warning_regression_fails(tmp_path, capsys):
    import json
    baseline = tmp_path / "baseline.json"
    run_cli(capsys, "analyze", "compress", "--scale", "0.2",
            "--write-baseline", str(baseline))
    payload = json.loads(baseline.read_text())
    recorded = payload["benchmarks"]["compress"]
    # the written shape is severity-split; a warning-count regression
    # must fail the gate even with errors untouched.
    assert set(recorded["lint"]) == {"errors", "warnings"}
    recorded["lint"]["warnings"]["missing-return"] = -1
    baseline.write_text(json.dumps(payload))
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--baseline", str(baseline))
    assert code == 1
    assert "missing-return" in out and "regressed" in out


def test_analyze_interprocedural(capsys):
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--interprocedural")
    assert code == 0
    assert "interproc" in out
    assert "ineff: dw=" in out


def test_analyze_interprocedural_baseline_bound_gate(tmp_path, capsys):
    import json
    baseline = tmp_path / "baseline.json"
    run_cli(capsys, "analyze", "compress", "--scale", "0.2",
            "--interprocedural", "--write-baseline", str(baseline))
    payload = json.loads(baseline.read_text())
    recorded = payload["benchmarks"]["compress"]
    assert "interprocedural" in recorded
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--interprocedural", "--baseline", str(baseline))
    assert code == 0
    # a grown interprocedural bound is a loosened analysis: gate fails.
    recorded["interprocedural"]["sites"]["move_sites"] = -1
    baseline.write_text(json.dumps(payload))
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--interprocedural", "--baseline", str(baseline))
    assert code == 1
    assert "loosened" in out


def test_analyze_interprocedural_cross_check(capsys):
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--interprocedural", "--cross-check")
    assert code == 0
    assert "dead_write" in out and "candidates" in out
    assert "OK" in out


def test_analyze_cross_check(capsys):
    code, out = run_cli(capsys, "analyze", "compress",
                        "--scale", "0.2", "--cross-check")
    assert code == 0
    assert "OK" in out and "dynamic" in out


def test_analyze_json_export(tmp_path, capsys):
    import json
    out_file = tmp_path / "reports.json"
    code, out = run_cli(capsys, "analyze", "compress", "--scale", "0.2",
                        "--json", str(out_file))
    assert code == 0
    payload = json.loads(out_file.read_text())
    assert payload["compress"]["derived"]["lint_errors"] == 0
