"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "m88ksim" in out and "gnuchess" in out
    assert out.count("\n") >= 16


def test_run(capsys):
    code, out = run_cli(capsys, "run", "compress", "--scale", "0.1",
                        "--opts", "moves")
    assert code == 0
    assert "IPC" in out and "transformed" in out


def test_compare(capsys):
    code, out = run_cli(capsys, "compare", "tex", "--scale", "0.1")
    assert code == 0
    assert "baseline" in out
    for name in ("moves", "reassoc", "scaled_adds", "placement", "all"):
        assert name in out


def test_figures_subset(capsys):
    code, out = run_cli(capsys, "figures", "--scale", "0.05",
                        "--only", "3")
    assert code == 0
    assert "Figure 3" in out and "paper claim" in out


def test_tables(capsys):
    code, out = run_cli(capsys, "tables", "--scale", "0.05")
    assert code == 0
    assert "Table 1" in out and "Table 2" in out


def test_asm_command(tmp_path, capsys):
    source = tmp_path / "kernel.s"
    source.write_text("""
    main:
        li   $a0, 9
        li   $v0, 1
        syscall
        halt
    """)
    code, out = run_cli(capsys, "asm", str(source), "--simulate",
                        "--opts", "none")
    assert code == 0
    assert "[9]" in out and "IPC" in out


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
