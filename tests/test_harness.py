"""Harness tests on a reduced benchmark subset (kept fast)."""

import pytest

from repro.fillunit.opts.base import OptimizationConfig
from repro.harness import ExperimentRunner, figures, tables
from repro.harness.report import render_bar_chart, render_table

SUBSET = ["compress", "m88ksim"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.15, benchmarks=SUBSET)


def test_trace_cached(runner):
    first = runner.trace("compress")
    second = runner.trace("compress")
    assert first is second


def test_results_cached(runner):
    a = runner.baseline("compress")
    b = runner.baseline("compress")
    assert a is b


def test_improvement_positive_for_combined(runner):
    imp = runner.improvement("m88ksim", OptimizationConfig.all())
    assert imp > 0


def test_figure3_structure(runner):
    fig = figures.figure3(runner)
    assert set(fig.rows) == set(SUBSET)
    assert fig.figure == "Figure 3"
    text = fig.render()
    assert "register move" in text and "paper claim" in text


def test_figure7_reports_pairs(runner):
    fig = figures.figure7(runner)
    for base_pct, placed_pct in fig.rows.values():
        assert 0 <= placed_pct <= 100 and 0 <= base_pct <= 100
    assert "mean_baseline" in fig.extra


def test_figure8_latency_columns(runner):
    fig = figures.figure8(runner, latencies=(1, 5))
    for values in fig.rows.values():
        assert len(values) == 2
    assert "specint_mean" in fig.extra
    assert "1-cycle" in fig.extra["columns"]


def test_table1_lists_subset(runner):
    table = tables.table1(runner)
    names = [row[0] for row in table.rows]
    assert names == SUBSET
    assert "95M" in table.render()


def test_table2_has_average_row(runner):
    table = tables.table2(runner)
    assert table.rows[-1][0] == "average"
    assert len(table.rows) == len(SUBSET) + 1


def test_clear_resets_caches(runner):
    runner.baseline("compress")
    runner.clear()
    assert runner.service._traces == {}
    assert runner.service._memo == {}


# --- report rendering -------------------------------------------------------

def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1.25], ["bb", 10.0]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.2" in text and "10.0" in text


def test_render_bar_chart():
    text = render_bar_chart({"aa": 10.0, "b": -5.0}, title="T")
    assert text.startswith("T")
    assert "#" in text
    assert "-" in text.splitlines()[2]   # negative bar marked


def test_render_bar_chart_empty():
    assert render_bar_chart({}, title="T") == "T"
