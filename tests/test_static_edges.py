"""CFG soundness property: executed control flow stays inside the
static graph.

The CFG deliberately over-approximates (indirect jumps edge to every
labelled block, returns to every call site); what it must never do is
*miss* a transition the machine actually takes. This test replays the
functional executor's committed stream and asserts every observed
``pc -> next_pc`` transition is covered by :meth:`ControlFlowGraph.
has_flow` — on the acceptance workloads at full test scale and on all
fifteen at a smaller one.
"""

import pytest

from repro import workloads
from repro.analysis.static.cfg import build_cfg
from repro.machine.executor import Executor


def _missing_edges(name, scale):
    program = workloads.build(name, scale)
    cfg = build_cfg(program)
    trace = Executor(program).run()
    executed = trace.executed_edges()
    assert executed, "empty trace cannot witness anything"
    return [(pc, nxt) for pc, nxt in sorted(executed)
            if not cfg.has_flow(pc, nxt)]


@pytest.mark.parametrize("name", ["compress", "li"])
def test_every_executed_edge_is_static(name):
    missing = _missing_edges(name, 0.5)
    assert missing == [], (
        f"{name}: executed transitions absent from the static CFG: "
        + ", ".join(f"{pc:#x}->{nxt:#x}" for pc, nxt in missing[:5]))


def test_all_workloads_small_scale():
    for name in workloads.names():
        assert _missing_edges(name, 0.2) == [], name


def test_executed_edges_excludes_halt_self_loop():
    program = workloads.build("compress", 0.2)
    trace = Executor(program).run()
    for pc, nxt in trace.executed_edges():
        assert pc != nxt
