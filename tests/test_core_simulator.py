"""Simulator facade and configuration-sensitivity tests."""

from dataclasses import replace

import pytest

from repro.asm import assemble
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.core.simulator import Simulator, simulate
from repro.fillunit.opts.base import OptimizationConfig
from tests.helpers import run_asm

PROGRAM_SRC = """
main:
    li   $t9, 150
loop:
    sll  $t1, $t0, 2
    andi $t1, $t1, 124
    lwx  $t2, $t1, $gp
    add  $t3, $t3, $t2
    addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def test_simulator_accepts_program_or_trace():
    program = assemble(PROGRAM_SRC, name="prog")
    simulator = Simulator(SimConfig.tiny())
    by_program = simulator.run(program)
    trace = simulator.trace_program(program)
    by_trace = simulator.run(trace, benchmark="prog")
    assert by_program.cycles == by_trace.cycles
    assert by_program.benchmark == "prog"


def test_simulate_default_config_is_paper():
    program = assemble(PROGRAM_SRC)
    result = simulate(program)
    assert result.instructions > 100


def test_fresh_microarchitectural_state_per_run():
    simulator = Simulator(SimConfig.tiny())
    program = assemble(PROGRAM_SRC)
    trace = simulator.trace_program(program)
    first = simulator.run(trace)
    second = simulator.run(trace)
    # No warm state leaks between runs: identical results.
    assert first.cycles == second.cycles
    assert first.tc_hits == second.tc_hits


# --- configuration sensitivity -------------------------------------------


def run_with(config, source=PROGRAM_SRC):
    _, trace = run_asm(source)
    return PipelineModel(config).run(trace, "t", "r")


def test_wider_window_never_hurts():
    small = run_with(replace(SimConfig.tiny(), window_size=32))
    large = run_with(replace(SimConfig.tiny(), window_size=512))
    assert large.cycles <= small.cycles


def test_narrow_retire_width_throttles():
    wide = run_with(SimConfig.tiny())
    narrow = run_with(replace(SimConfig.tiny(), retire_width=1))
    assert narrow.cycles >= wide.cycles
    assert narrow.ipc <= 1.0 + 1e-9


def test_zero_bypass_penalty_never_hurts():
    costly = run_with(SimConfig.tiny())
    free = run_with(replace(SimConfig.tiny(), cross_cluster_penalty=0))
    assert free.cycles <= costly.cycles
    assert free.bypass_delayed == 0


def test_block_granular_fill_end_to_end():
    packed = run_with(SimConfig.tiny())
    unpacked = run_with(replace(SimConfig.tiny(), trace_packing=False))
    # both complete correctly; both use the trace cache
    assert unpacked.instructions == packed.instructions
    assert unpacked.tc_fetched_instrs > 0


def test_single_cluster_machine():
    config = replace(SimConfig.tiny(), num_clusters=1, cluster_size=16)
    result = run_with(config)
    assert result.bypass_delayed == 0      # nowhere to cross to
    assert result.ipc > 0


def test_extended_optimizations_run_through_simulator():
    program = assemble(PROGRAM_SRC)
    simulator = Simulator(SimConfig.tiny(OptimizationConfig.extended()))
    result = simulator.run(program)
    assert result.ipc > 0
