"""The deprecated ``repro.harness.export`` shim is gone (PR 8).

Result serialization lives in :mod:`repro.core.export`; the harness
package no longer advertises or resolves the old name.
"""

import importlib

import pytest

import repro.harness as harness
from repro.core.export import SCHEMA_VERSION, dump_results


def test_shim_module_is_gone():
    with pytest.raises(ModuleNotFoundError):
        importlib.import_module("repro.harness.export")


def test_harness_does_not_expose_export():
    assert "export" not in harness.__all__
    with pytest.raises(AttributeError):
        harness.export


def test_core_export_is_the_canonical_home():
    assert callable(dump_results)
    assert isinstance(SCHEMA_VERSION, int)
