"""The deprecated ``repro.harness.export`` shim: warns, still works."""

import importlib
import sys
import warnings

import repro.core.export as core_export


def _fresh_import():
    sys.modules.pop("repro.harness.export", None)
    return importlib.import_module("repro.harness.export")


def test_shim_warns_on_import():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _fresh_import()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert deprecations, "importing the shim must warn"
    assert "repro.core.export" in str(deprecations[0].message)


def test_shim_reexports_are_identical():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = _fresh_import()
    for name in ("result_to_dict", "result_from_dict", "dump_results",
                 "load_results", "diff_results", "SCHEMA_VERSION"):
        assert getattr(shim, name) is getattr(core_export, name)


def test_harness_package_import_does_not_warn():
    # The shim resolves lazily via repro.harness.__getattr__, so merely
    # importing the harness stays warning-free...
    for mod in ("repro.harness", "repro.harness.export"):
        sys.modules.pop(mod, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        harness = importlib.import_module("repro.harness")
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]
    # ...while attribute access still reaches the (warning) shim.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = harness.export
    assert module.dump_results is core_export.dump_results
