"""SimConfig.to_dict / from_dict round-trip.

The exec layer's job fingerprint is a hash of ``to_dict()`` and the
worker pool reconstructs configs from it across process boundaries, so
every field — top-level and nested — must survive the trip exactly.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.branch.predictor import PredictorConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.fillunit.opts.base import OptimizationConfig
from repro.tracecache.cache import TraceCacheConfig


def _non_default_config() -> SimConfig:
    """A valid SimConfig with every field away from its default."""
    return SimConfig(
        fetch_width=8,
        issue_width=8,
        retire_width=8,
        max_blocks_per_cycle=2,
        max_checkpoints=16,
        ic_fetch_width=4,
        num_clusters=2,
        cluster_size=2,
        rs_per_fu=16,
        cross_cluster_penalty=2,
        window_size=128,
        mispredict_redirect=2,
        predictor=PredictorConfig(
            pht_entries=(4096, 1024, 512), history_bits=10,
            bias_entries=1024, promote_threshold=32, ras_depth=8,
            btb_entries=256),
        model_wrong_path=True,
        hierarchy=HierarchyConfig(
            l1i_size=2048, l1i_assoc=2, l1i_line=16, l1d_size=8192,
            l1d_assoc=2, l1d_line=16, l2_size=131072, l2_assoc=4,
            l2_line=32, l2_latency=8, memory_latency=80,
            policy="srrip"),
        store_forward_window=64,
        trace_cache_enabled=False,
        trace_cache=TraceCacheConfig(
            num_sets=64, assoc=2, max_instrs=8, max_cond_branches=2,
            policy="trrip"),
        trace_packing=False,
        fill_latency=7,
        optimizations=OptimizationConfig(
            moves=True, reassoc=True, scaled_adds=True, placement=True,
            cse=True, dead_code=True, predication=True,
            reassoc_cross_flow_only=False, max_scale_shift=2),
        verify_fill=True,
        verify_each_pass=True,
        timing_memo=False,
        memo_capacity=512,
        replay_shadow_every=3,
        memo_breakeven=0.25,
        memo_breakeven_window=256,
    )


def _assert_every_field_differs(config: SimConfig) -> None:
    default = SimConfig()
    for f in dataclasses.fields(SimConfig):
        got = getattr(config, f.name)
        if dataclasses.is_dataclass(got):
            for nested in dataclasses.fields(got):
                assert (getattr(got, nested.name)
                        != getattr(getattr(default, f.name),
                                   nested.name)), \
                    f"{f.name}.{nested.name} still default"
        else:
            assert got != getattr(default, f.name), \
                f"{f.name} still default"


def test_fixture_covers_every_field():
    _assert_every_field_differs(_non_default_config())


def test_round_trip_every_field():
    config = _non_default_config()
    rebuilt = SimConfig.from_dict(config.to_dict())
    assert rebuilt == config


def test_round_trip_survives_json_hop():
    config = _non_default_config()
    hopped = json.loads(json.dumps(config.to_dict()))
    rebuilt = SimConfig.from_dict(hopped)
    assert rebuilt == config
    assert isinstance(rebuilt.predictor.pht_entries, tuple)
    # A second trip is byte-stable (fingerprinting relies on this).
    assert rebuilt.to_dict() == config.to_dict()


def test_defaults_round_trip():
    config = SimConfig.paper()
    assert SimConfig.from_dict(config.to_dict()) == config


def test_unknown_top_level_key_rejected():
    payload = SimConfig().to_dict()
    payload["fetch_widht"] = 32
    with pytest.raises(ConfigError, match="fetch_widht"):
        SimConfig.from_dict(payload)


def test_unknown_nested_key_rejected():
    payload = SimConfig().to_dict()
    payload["predictor"]["pht_entires"] = [1, 2, 3]
    with pytest.raises(ConfigError, match="pht_entires"):
        SimConfig.from_dict(payload)


def test_invalid_values_still_validated():
    payload = SimConfig().to_dict()
    payload["fill_latency"] = 0
    with pytest.raises(ConfigError):
        SimConfig.from_dict(payload)


def test_policy_round_trips_both_knobs():
    config = SimConfig(
        trace_cache=TraceCacheConfig(policy="trrip"),
        hierarchy=HierarchyConfig(policy="srrip"))
    rebuilt = SimConfig.from_dict(config.to_dict())
    assert rebuilt.trace_cache.policy == "trrip"
    assert rebuilt.hierarchy.policy == "srrip"
    assert rebuilt == config


def test_unknown_policy_rejected():
    with pytest.raises(ConfigError, match="replacement policy"):
        TraceCacheConfig(policy="plru")
    with pytest.raises(ConfigError, match="replacement policy"):
        HierarchyConfig(policy="random")
    payload = SimConfig().to_dict()
    payload["hierarchy"]["policy"] = "clock"
    with pytest.raises(ConfigError, match="replacement policy"):
        SimConfig.from_dict(payload)


def test_breakeven_knobs_validated():
    with pytest.raises(ConfigError, match="memo_breakeven"):
        SimConfig(memo_breakeven=1.0)
    with pytest.raises(ConfigError, match="memo_breakeven_window"):
        SimConfig(memo_breakeven_window=-1)
