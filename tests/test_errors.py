"""Error hierarchy tests."""

import pytest

from repro.errors import (AssemblerError, ConfigError, EncodingError,
                          ExecutionError, ReproError, SegmentError)


def test_all_derive_from_repro_error():
    for cls in (AssemblerError, EncodingError, ExecutionError,
                ConfigError, SegmentError):
        assert issubclass(cls, ReproError)


def test_assembler_error_line_prefix():
    err = AssemblerError("bad thing", line=7)
    assert err.line == 7
    assert str(err) == "line 7: bad thing"


def test_assembler_error_without_line():
    err = AssemblerError("bad thing")
    assert err.line is None
    assert str(err) == "bad thing"


def test_catchable_at_base():
    with pytest.raises(ReproError):
        raise SegmentError("boom")
