"""Grid expansion helpers (the one config-variant expander)."""

from __future__ import annotations

from repro.core.config import SimConfig
from repro.exec.grid import (
    JobSpec,
    expand,
    opt_variant,
    paper_grid,
    sweep_grid,
    variant_label,
    with_label,
)
from repro.fillunit.opts.base import OptimizationConfig


def test_variant_label():
    assert variant_label(OptimizationConfig.none()) == "baseline"
    assert variant_label(OptimizationConfig.only("moves")) == "moves"
    assert (variant_label(OptimizationConfig.all())
            == "moves+reassoc+scaled_adds+placement")


def test_opt_variant_builds_paper_machine():
    label, config = opt_variant(OptimizationConfig.only("reassoc"),
                                fill_latency=7)
    assert label == "reassoc"
    assert config.fill_latency == 7
    assert config.optimizations.reassoc
    assert not config.optimizations.moves


def test_expand_is_benchmark_major():
    variants = [opt_variant(OptimizationConfig.none()),
                opt_variant(OptimizationConfig.all())]
    jobs = expand(["a", "b"], variants)
    assert [(j.benchmark, j.label) for j in jobs] == [
        ("a", "baseline"), ("a", "moves+reassoc+scaled_adds+placement"),
        ("b", "baseline"), ("b", "moves+reassoc+scaled_adds+placement")]


def test_sweep_grid_layout():
    jobs = sweep_grid(
        ["x", "y"], [1, 5],
        lambda latency, opts: SimConfig.paper(opts, latency))
    # benchmark-major, points in order, base before all at each point
    assert [(j.benchmark, j.label) for j in jobs] == [
        ("x", "base@1"), ("x", "all@1"), ("x", "base@5"), ("x", "all@5"),
        ("y", "base@1"), ("y", "all@1"), ("y", "base@5"), ("y", "all@5")]
    assert jobs[0].config.fill_latency == 1
    assert not jobs[0].config.optimizations.placement
    assert jobs[3].config.fill_latency == 5
    assert jobs[3].config.optimizations.placement


def test_paper_grid_covers_figures_and_table2():
    jobs = paper_grid(["compress"], latencies=(1, 5, 10))
    labels = {j.label for j in jobs}
    # figures 3-6: each single optimization at the default latency
    assert {"moves", "reassoc", "scaled_adds", "placement"} <= labels
    # figure 8 + table 2: baseline and combined at each latency
    assert {"baseline@1", "baseline", "baseline@10"} <= labels
    combined = variant_label(OptimizationConfig.all())
    assert {f"{combined}@1", combined, f"{combined}@10"} <= labels
    assert len(jobs) == 10


def test_with_label_keeps_machine():
    job = JobSpec("compress", SimConfig.paper(), "baseline")
    renamed = with_label(job, "other")
    assert renamed.label == "other"
    assert renamed.config == job.config
    assert renamed.benchmark == job.benchmark
