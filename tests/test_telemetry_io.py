"""Shared JSONL archive loading and malformed-line reporting."""

import pytest

from repro.telemetry.events import Event, JsonlSink, read_jsonl
from repro.telemetry.io import (
    MalformedLineError,
    load_attribution_runs,
    read_events,
)

GOOD = ('{"kind":"run.started","cycle":0,"benchmark":"x"}\n'
        '{"kind":"segment.built","cycle":7,"start_pc":64}\n')


def test_read_events_roundtrip(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlSink(path) as sink:
        sink.handle(Event("run.started", 0, {"benchmark": "x"}))
        sink.handle(Event("segment.built", 7, {"start_pc": 64}))
    events = read_events(path)
    assert [e.kind for e in events] == ["run.started", "segment.built"]
    assert events[1].cycle == 7 and events[1].data == {"start_pc": 64}


def test_blank_lines_are_not_malformed(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(GOOD.replace("\n", "\n\n"))
    assert len(read_events(path)) == 2


@pytest.mark.parametrize("bad_line,reason_part", [
    ('{"kind": truncated', "invalid JSON"),
    ('[1, 2, 3]', "not a JSON object"),
    ('{"cycle": 5}', "missing 'kind'"),
])
def test_malformed_line_raises_with_location(tmp_path, bad_line,
                                             reason_part):
    path = tmp_path / "events.jsonl"
    path.write_text(GOOD + bad_line + "\n")
    with pytest.raises(MalformedLineError) as excinfo:
        read_events(path)
    error = excinfo.value
    assert error.line_no == 3
    assert error.path == str(path)
    assert reason_part in error.reason
    assert str(path) in str(error) and ":3:" in str(error)


def test_long_snippet_is_truncated(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text("x" * 200 + "\n")
    with pytest.raises(MalformedLineError) as excinfo:
        read_events(path)
    assert len(excinfo.value.snippet) == 60
    assert excinfo.value.snippet.endswith("...")


def test_warn_mode_keeps_good_lines(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    path.write_text(GOOD + "not json\n" + GOOD)
    events = read_events(path, on_error="warn")
    assert len(events) == 4
    assert "malformed event line" in capsys.readouterr().err


def test_skip_mode_is_silent(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    path.write_text("not json\n" + GOOD)
    assert len(read_events(path, on_error="skip")) == 2
    assert capsys.readouterr().err == ""


def test_unknown_mode_rejected(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(GOOD)
    with pytest.raises(ValueError, match="on_error"):
        read_events(path, on_error="ignore")


def test_events_read_jsonl_delegates(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(GOOD + '{"cycle": 1}\n')
    with pytest.raises(MalformedLineError):
        read_jsonl(path)        # historical entry point: raise mode


def test_load_attribution_runs(tmp_path):
    path = tmp_path / "runs.jsonl"
    path.write_text(
        '{"kind":"run.started","cycle":0}\n'
        '{"kind":"run.finished","cycle":90,"benchmark":"compress",'
        '"label":"all","cycles":90,"attribution":{"base":90}}\n'
        '{"kind":"run.finished","cycle":50,"benchmark":"li",'
        '"label":"none","cycles":50}\n')
    runs = load_attribution_runs(path)
    assert runs == [("compress/all", 90, {"base": 90}),
                    ("li/none", 50, {})]
