"""Fill collector tests: segment boundary rules."""

from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from tests.helpers import run_asm


def collect_all(trace, collector):
    segments = []
    for record in trace:
        segments.extend(collector.add(record))
    return segments


def test_straight_line_packs_sixteen():
    _, trace = run_asm("main:\n" + "    addi $t0, $t0, 1\n" * 40 + "    halt\n")
    collector = FillCollector(BiasTable(64))
    segments = collect_all(trace, collector)
    assert [len(s) for s in segments] == [16, 16, 9]
    # contiguity: each segment's records are consecutive pcs
    for seg in segments:
        pcs = [r.pc for r in seg.records]
        assert pcs == list(range(pcs[0], pcs[0] + 4 * len(pcs), 4))


def test_terminator_ends_segment():
    _, trace = run_asm("""
    main:
        jal f
        halt
    f:
        addi $t0, $t0, 1
        ret
    """)
    collector = FillCollector(BiasTable(64))
    segments = collect_all(trace, collector)
    # jal does NOT terminate; ret (jr $ra) does; halt does.
    assert len(segments) == 2
    assert segments[0].records[-1].instr.is_return()
    assert segments[1].records[-1].instr.op.value == "halt"


def test_call_does_not_terminate():
    _, trace = run_asm("""
    main:
        addi $t0, $t0, 1
        jal f
        halt
    f:
        addi $t0, $t0, 1
        ret
    """)
    collector = FillCollector(BiasTable(64))
    segments = collect_all(trace, collector)
    first = segments[0]
    ops = [r.instr.op.value for r in first.records]
    assert "jal" in ops and ops[-1] == "jr"
    assert first.block_count >= 1


def test_fourth_branch_splits_segment():
    src = "main:\n"
    for i in range(5):
        src += f"    beq $zero, $t9, skip{i}\nskip{i}:\n"
    src += "    halt\n"
    _, trace = run_asm(src)
    collector = FillCollector(BiasTable(64), max_cond_branches=3)
    segments = collect_all(trace, collector)
    assert all(
        sum(1 for b in s.branches if not b.promoted) <= 3
        for s in segments)
    assert len(segments[0]) == 3   # three not-taken branches, cut before 4th


def test_promoted_branches_do_not_count_toward_limit():
    src = "main:\n"
    for i in range(6):
        src += f"    beq $zero, $t9, skip{i}\nskip{i}:\n"
    src += "    halt\n"
    _, trace = run_asm(src)
    bias = BiasTable(64, threshold=1)
    for record in trace:      # pre-promote every branch
        if record.instr.is_cond_branch():
            bias.record(record.pc, record.taken)
            bias.record(record.pc, record.taken)
    collector = FillCollector(bias, max_cond_branches=3)
    segments = collect_all(trace, collector)
    assert len(segments[0]) == 7   # all six branches + halt pack together


def test_block_ids_increment_after_conditional_branches():
    _, trace = run_asm("""
    main:
        addi $t0, $t0, 1
        beq  $zero, $t9, next
    next:
        addi $t0, $t0, 1
        halt
    """)
    collector = FillCollector(BiasTable(64))
    segments = collect_all(trace, collector)
    seg = segments[0]
    assert seg.block_ids == [0, 0, 1, 1]
    assert seg.block_count == 2


def test_flow_ids_increment_after_any_transfer():
    _, trace = run_asm("""
    main:
        addi $t0, $t0, 1
        j next
    next:
        addi $t0, $t0, 1
        halt
    """)
    collector = FillCollector(BiasTable(64))
    seg = collect_all(trace, collector)[0]
    # unconditional jump advances flow but NOT checkpoint block
    assert seg.flow_ids == [0, 0, 1, 1]
    assert seg.block_ids == [0, 0, 0, 0]


def test_miss_alignment_cuts_segment():
    _, trace = run_asm("main:\n" + "    addi $t0, $t0, 1\n" * 20 + "    halt\n")
    collector = FillCollector(BiasTable(64))
    align_pc = trace[5].pc
    collector.note_fetch_miss(align_pc)
    segments = collect_all(trace, collector)
    assert segments[0].records[-1].pc == align_pc - 4
    assert segments[1].start_pc == align_pc


def test_block_granular_mode_keeps_whole_blocks():
    src = "main:\n"
    for i in range(4):
        src += "    addi $t0, $t0, 1\n" * 5
        src += f"    beq $zero, $t9, n{i}\nn{i}:\n"
    src += "    halt\n"
    _, trace = run_asm(src)
    collector = FillCollector(BiasTable(64), trace_packing=False)
    segments = collect_all(trace, collector)
    # blocks are 6 instructions; two fit (12), a third would overflow 16
    assert len(segments[0]) == 12
    assert segments[0].records[-1].instr.is_cond_branch()


def test_flush_returns_partial_segment():
    _, trace = run_asm("main:\n" + "    addi $t0, $t0, 1\n" * 3 + "    halt\n")
    collector = FillCollector(BiasTable(64))
    segments = collect_all(trace, collector)
    assert segments and segments[-1].records[-1].instr.op.value == "halt"
    assert collector.flush() == []  # nothing pending after halt cut


def test_path_key_and_start_pc():
    _, trace = run_asm("main:\n    addi $t0, $t0, 1\n    halt\n")
    collector = FillCollector(BiasTable(64))
    seg = collect_all(trace, collector)[0]
    assert seg.start_pc == trace[0].pc
    assert seg.path_key == (trace[0].pc, trace[1].pc)
