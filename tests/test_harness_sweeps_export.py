"""Sweep and export facility tests."""

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.core.export import (diff_results, dump_results,
                               load_results, result_from_dict,
                               result_to_dict)
from repro.harness import sweeps

BENCHES = ["compress"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.1, benchmarks=BENCHES)


def test_fill_latency_sweep_structure(runner):
    result = sweeps.sweep_fill_latency(runner, BENCHES, points=(1, 10))
    assert result.points == [1, 10]
    assert set(result.rows) == set(BENCHES)
    imps = result.improvements("compress")
    assert len(imps) == 2
    # latency tolerance: the two points are close
    assert abs(imps[0] - imps[1]) < 6.0
    assert "Sweep" in result.render()


def test_bypass_penalty_sweep_monotone_opportunity(runner):
    result = sweeps.sweep_bypass_penalty(runner, BENCHES, points=(0, 2))
    zero, expensive = result.mean_improvements()
    # a costlier bypass network gives the optimizations more to win
    assert expensive >= zero - 1.0


def test_window_sweep_runs(runner):
    result = sweeps.sweep_window(runner, BENCHES, points=(64, 256))
    assert all(len(pairs) == 2 for pairs in result.rows.values())


def test_tc_capacity_sweep_runs(runner):
    result = sweeps.sweep_trace_cache_size(runner, BENCHES,
                                           points=(64, 512))
    base_small = result.rows["compress"][0][0]
    base_large = result.rows["compress"][1][0]
    assert base_small > 0 and base_large > 0


# --- export -----------------------------------------------------------

def test_result_roundtrip(runner):
    original = runner.baseline("compress")
    rebuilt = result_from_dict(result_to_dict(original))
    assert rebuilt == original
    assert rebuilt.ipc == original.ipc


def test_dump_and_load(tmp_path, runner):
    path = tmp_path / "results.json"
    results = [runner.baseline("compress")]
    dump_results(results, str(path))
    loaded = load_results(str(path))
    assert loaded == results


def test_schema_version_checked():
    with pytest.raises(ValueError):
        result_from_dict({"schema": 999})


def test_diff_results(runner):
    base = runner.baseline("compress")
    assert diff_results(base, base) is None
    import dataclasses
    slower = dataclasses.replace(base, cycles=base.cycles * 2)
    text = diff_results(base, slower)
    assert text is not None and "-50.0%" in text


def test_diff_rejects_mismatched_experiments(runner):
    import dataclasses
    base = runner.baseline("compress")
    other = dataclasses.replace(base, benchmark="tex")
    with pytest.raises(ValueError):
        diff_results(base, other)


def test_checkpoint_sweep_monotone(runner):
    result = sweeps.sweep_checkpoints(runner, BENCHES, points=(2, 32))
    scarce_pairs = [pairs[0] for pairs in result.rows.values()]
    plenty_pairs = [pairs[1] for pairs in result.rows.values()]
    # more checkpoints never slow the baseline machine
    assert all(p[0] >= s[0] - 1e-9
               for s, p in zip(scarce_pairs, plenty_pairs))


def test_analysis_report_roundtrip():
    from repro import workloads
    from repro.analysis.static import analyze_program
    from repro.core.export import analysis_from_dict, analysis_to_dict

    report = analyze_program(workloads.build("compress", 0.2),
                             "compress")
    payload = analysis_to_dict(report)
    assert payload["derived"]["static_bounds"] == report.static_bounds()
    rebuilt = analysis_from_dict(payload)
    assert rebuilt == report


def test_analysis_report_roundtrip_interprocedural():
    from repro import workloads
    from repro.analysis.static import analyze_program
    from repro.core.export import analysis_from_dict, analysis_to_dict

    report = analyze_program(workloads.build("li", 0.2), "li",
                             interprocedural=True)
    assert report.interproc is not None
    payload = analysis_to_dict(report)
    assert payload["derived"]["interproc_bounds"] \
        == report.interproc.static_bounds()
    assert payload["derived"]["ineff_counts"] \
        == report.interproc.ineff_counts()
    rebuilt = analysis_from_dict(payload)
    assert rebuilt == report
    assert rebuilt.interproc == report.interproc


def test_analysis_schema_version_checked():
    from repro.core.export import analysis_from_dict
    with pytest.raises(ValueError):
        analysis_from_dict({"schema": 999})
