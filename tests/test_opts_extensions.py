"""Tests for the future-work passes the paper's §5 proposes:
common-subexpression elimination and dead-code elimination."""

from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.opcodes import Op
from tests.helpers import build_segments

CSE = OptimizationConfig.only("cse")
DCE = OptimizationConfig.only("dead_code")
CSE_MOVES = OptimizationConfig(cse=True, moves=True)


def segment_for(source, opts, **kw):
    _, _, segments = build_segments(source, opts, **kw)
    return segments[0]


# --- CSE ---------------------------------------------------------------

def test_duplicate_add_becomes_move():
    seg = segment_for("""
    main:
        add $t0, $s0, $s1
        add $t1, $s0, $s1
        halt
    """, CSE)
    dup = seg.instrs[1]
    assert dup.op is Op.ADDI and dup.imm == 0 and dup.rs == 8


def test_cse_result_feeds_move_elimination():
    """The eliminated computation becomes a canonical move, which the
    move pass then marks and bypasses — the two passes compose."""
    seg = segment_for("""
    main:
        add $t0, $s0, $s1
        add $t1, $s0, $s1
        add $v0, $t1, $t1
        halt
    """, CSE_MOVES)
    assert seg.instrs[1].move_flag
    assert seg.instrs[2].sources() == (8, 8)   # rewritten to $t0


def test_commutative_match():
    seg = segment_for("""
    main:
        add $t0, $s0, $s1
        add $t1, $s1, $s0
        halt
    """, CSE)
    assert seg.instrs[1].op is Op.ADDI and seg.instrs[1].imm == 0


def test_noncommutative_operand_order_matters():
    seg = segment_for("""
    main:
        sub $t0, $s0, $s1
        sub $t1, $s1, $s0
        halt
    """, CSE)
    assert seg.instrs[1].op is Op.SUB


def test_source_redefinition_blocks_cse():
    seg = segment_for("""
    main:
        add  $t0, $s0, $s1
        addi $s0, $s0, 1
        add  $t1, $s0, $s1    # s0 changed: not a common subexpression
        halt
    """, CSE)
    assert seg.instrs[2].op is Op.ADD


def test_result_redefinition_blocks_cse():
    seg = segment_for("""
    main:
        add  $t0, $s0, $s1
        addi $t0, $zero, 7    # the earlier result is gone
        add  $t1, $s0, $s1
        halt
    """, CSE)
    assert seg.instrs[2].op is Op.ADD


def test_immediates_must_match():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        addi $t1, $s0, 8
        halt
    """, CSE)
    assert seg.instrs[1].imm == 8


def test_loads_never_eliminated():
    seg = segment_for("""
    main:
        lw $t0, 0($sp)
        lw $t1, 0($sp)
        halt
    """, CSE)
    assert seg.instrs[1].op is Op.LW


# --- dead code ----------------------------------------------------------

def test_overwritten_value_squashed():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4     # dead: overwritten below, never read
        addi $t0, $s1, 8
        add  $v0, $t0, $t0
        halt
    """, DCE)
    assert seg.instrs[0].op is Op.NOP
    assert seg.instrs[1].op is Op.ADDI


def test_read_before_overwrite_is_live():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        add  $t1, $t0, $t0   # reads it first
        addi $t0, $s1, 8
        halt
    """, DCE)
    assert seg.instrs[0].op is Op.ADDI


def test_liveout_values_kept():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4     # live-out of the segment: must stay
        add  $v0, $s1, $s1
        halt
    """, DCE)
    assert seg.instrs[0].op is Op.ADDI


def test_branch_between_defs_blocks_removal():
    """A conditional branch between definition and redefinition may
    exit the segment with the value architecturally live — the paper's
    partial-execution hazard; the conservative pass keeps it."""
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        beq  $zero, $t9, next
    next:
        addi $t0, $s1, 8
        halt
    """, DCE)
    assert seg.instrs[0].op is Op.ADDI


def test_stores_and_control_never_squashed():
    seg = segment_for("""
    main:
        sw   $t0, 0($sp)
        addi $t0, $s1, 8
        halt
    """, DCE)
    assert seg.instrs[0].op is Op.SW


def test_squashed_nop_keeps_slot_geometry():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        addi $t0, $s1, 8
        halt
    """, DCE)
    assert len(seg) == 3
    assert sorted(seg.slots) == [0, 1, 2]
    seg.validate()


def test_extended_config_runs_all_seven():
    from repro.fillunit.opts.base import PassManager
    manager = PassManager(OptimizationConfig.extended())
    names = [p.name for p in manager.passes]
    assert names == ["predication", "cse", "dead_code", "moves",
                     "reassoc", "scaled_adds", "placement"]


def test_dead_code_improves_or_holds_ipc():
    from repro.core.config import SimConfig
    from repro.core.pipeline import PipelineModel
    from tests.helpers import run_asm
    source = """
    main:
        li   $t9, 300
    loop:
        addi $t0, $s0, 4     # dead every iteration
        addi $t0, $s1, 8
        add  $t1, $t1, $t0
        addi $t2, $t2, 1
        blt  $t2, $t9, loop
        halt
    """
    _, trace = run_asm(source)
    base = PipelineModel(SimConfig.tiny()).run(trace, "t", "base")
    dce = PipelineModel(SimConfig.tiny(
        OptimizationConfig.only("dead_code"))).run(trace, "t", "dce")
    assert dce.ipc >= base.ipc
