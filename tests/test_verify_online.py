"""Online verification: the fill unit checking its own rewrites."""

import pytest

from repro.branch.bias import BiasTable
from repro.errors import ConfigError
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig, \
    OptimizationPass, PassManager
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.telemetry import Telemetry
from repro.tracecache.cache import TraceCache, TraceCacheConfig
from repro.verify import SegmentVerifier
from tests.helpers import run_asm

KERNEL = """
main:
    addi $t0, $zero, 5
    addi $t1, $t0, 0
    addi $t2, $t1, 4
    beq  $zero, $zero, next
next:
    addi $t3, $t2, 4
    sll  $t4, $t3, 2
    add  $t5, $t4, $sp
    sw   $t3, 0($t5)
    halt
"""


def build_unit(opts, verify=True, verify_each=False, telemetry=None):
    registry = telemetry.registry if telemetry is not None else None
    events = telemetry.events if telemetry is not None else None
    return FillUnit(
        FillUnitConfig(latency=1, optimizations=opts, verify=verify,
                       verify_each=verify_each),
        TraceCache(TraceCacheConfig(num_sets=64, assoc=4)),
        BiasTable(64, threshold=64), registry=registry, events=events)


def feed(unit, trace):
    collector = FillCollector(unit.bias, 16, 3)
    segments = []
    for record in trace:
        for candidate in collector.add(record):
            segments.append(unit.build_segment(candidate))
    return segments


def test_online_verification_accumulates_report():
    _, trace = run_asm(KERNEL)
    unit = build_unit(OptimizationConfig.all())
    feed(unit, trace)
    assert unit.verifier is not None
    assert unit.verifier.report.segments_checked > 0
    assert unit.verifier.report.violations == 0


def test_verification_off_means_no_verifier():
    _, trace = run_asm(KERNEL)
    unit = build_unit(OptimizationConfig.all(), verify=False)
    feed(unit, trace)
    assert unit.verifier is None


def test_counters_mirror_verification_outcomes():
    telemetry = Telemetry()
    _, trace = run_asm(KERNEL)
    unit = build_unit(OptimizationConfig.all(), telemetry=telemetry)
    segments = feed(unit, trace)
    counters = telemetry.registry.flat()
    assert counters["fillunit.verify.segments_checked"] == len(segments)
    assert counters["fillunit.verify.segments_clean"] == len(segments)


def test_violation_event_names_offending_pass():
    """A buggy pass's violations surface as verify.violation events
    naming the pass (per-pass mode)."""

    class BrokenPass(OptimizationPass):
        name = "broken"
        surface = frozenset()

        def apply(self, segment, ctx):
            for instr in segment.instrs:
                if instr.op is Op.ADDI and instr.imm:
                    instr.imm += 4          # corrupt a dataflow value
                    return {"broken": 1}
            return {}

    telemetry = Telemetry()
    sink = telemetry.attach_memory(kinds=("verify.violation",))
    _, trace = run_asm(KERNEL)
    unit = build_unit(OptimizationConfig.only("placement"),
                      verify_each=True, telemetry=telemetry)
    unit.passes.passes.insert(0, BrokenPass())
    feed(unit, trace)
    assert unit.verifier.report.violations > 0
    assert sink.events, "expected verify.violation events"
    event = sink.events[0]
    assert event.data["opt"] == "broken"
    assert event.data["severity"] == "error"
    assert event.data["rule"] in ("equiv-registers", "equiv-memory",
                                  "pass-surface")
    counters = telemetry.registry.flat()
    violation_scopes = [scope for scope in counters
                        if scope.startswith("fillunit.verify.violations.")]
    assert violation_scopes


def test_verify_each_runs_every_pass_in_isolation():
    _, trace = run_asm(KERNEL)
    unit = build_unit(OptimizationConfig.all(), verify_each=True)
    feed(unit, trace)
    assert unit.passes.verify_each
    assert unit.verifier.report.violations == 0


def test_placement_must_be_last(monkeypatch):
    """The constructor enforces what the docstring promises: placement
    runs after every rewriting pass, whatever subset is enabled."""
    manager = PassManager(OptimizationConfig.extended())
    names = [p.name for p in manager.passes]
    assert names[-1] == "placement"
    assert names[:3] == ["predication", "cse", "dead_code"]

    # Force a mis-ordered pipeline: a pass that *claims* to be
    # placement but runs before another pass must be rejected.
    from repro.fillunit.opts.cse import CommonSubexpressionPass
    monkeypatch.setattr(CommonSubexpressionPass, "name", "placement")
    with pytest.raises(ConfigError, match="placement must be the final"):
        PassManager(OptimizationConfig(cse=True, dead_code=True))


def test_every_pass_declares_a_surface():
    manager = PassManager(OptimizationConfig.extended())
    for opt_pass in manager.passes:
        assert opt_pass.surface is not None, opt_pass.name
        assert isinstance(opt_pass.surface, frozenset)


def test_sim_config_plumbs_verify_flags():
    from repro.core.config import SimConfig
    from repro.core.pipeline import PipelineModel

    config = SimConfig.tiny(OptimizationConfig.all())
    config.verify_fill = True
    config.verify_each_pass = True
    model = PipelineModel(config)
    assert model.fill_unit.verifier is not None
    assert model.fill_unit.passes.verify_each


def test_sim_config_rejects_each_without_verify():
    from repro.core.config import SimConfig
    with pytest.raises(ConfigError, match="verify_each_pass"):
        SimConfig(verify_each_pass=True)


def test_per_pass_and_whole_pipeline_agree_on_clean_segments():
    _, trace = run_asm(KERNEL)
    whole = build_unit(OptimizationConfig.extended())
    each = build_unit(OptimizationConfig.extended(), verify_each=True)
    feed(whole, trace)
    feed(each, trace)
    assert whole.verifier.report.violations == 0
    assert each.verifier.report.violations == 0
    assert (whole.verifier.report.segments_checked
            == each.verifier.report.segments_checked)
