"""Workload suite tests: every benchmark assembles, runs to completion,
and exhibits its designed idiom mix."""

import pytest

from repro import workloads
from repro.machine.executor import Executor
from repro.workloads.builder import AsmBuilder, lcg_values
from repro.workloads.registry import PAPER_TABLE2, specint_names

ALL_NAMES = workloads.names()


def test_fifteen_benchmarks_registered():
    assert len(ALL_NAMES) == 15
    assert ALL_NAMES[0] == "compress" and ALL_NAMES[-1] == "tex"


def test_specint_subset():
    names = specint_names()
    assert len(names) == 8
    assert "m88ksim" in names and "gnuchess" not in names


def test_registry_specs_complete():
    for name in ALL_NAMES:
        spec = workloads.spec(name)
        assert spec.suite in ("SPECint95", "UNIX")
        assert spec.paper_table2.total > 0
        assert spec.description


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        workloads.spec("doom")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_benchmark_builds_and_halts(name):
    program = workloads.build(name, scale=0.1)
    trace = Executor(program).run(max_instructions=2_000_000)
    assert len(trace) > 1000
    assert trace[-1].instr.op.value in ("halt", "syscall")
    assert trace.output        # every benchmark reports a checksum


@pytest.mark.parametrize("name", ALL_NAMES)
def test_benchmark_deterministic(name):
    a = Executor(workloads.build(name, scale=0.05)).run()
    b = Executor(workloads.build(name, scale=0.05)).run()
    assert a.output == b.output
    assert len(a) == len(b)


def test_scale_controls_length():
    short = Executor(workloads.build("compress", scale=0.1)).run()
    long = Executor(workloads.build("compress", scale=0.4)).run()
    assert len(long) > 2 * len(short)


def test_m88ksim_is_reassociation_rich():
    """The stand-in must carry its Table 2 signature: plenty of small
    constant ADDI chains crossing control flow."""
    trace = Executor(workloads.build("m88ksim", scale=0.1)).run()
    addi = sum(1 for r in trace
               if r.instr.op.value == "addi" and r.instr.rs != r.instr.rd
               and r.instr.rd != 0)
    assert addi / len(trace) > 0.10


def test_go_is_scaled_add_rich():
    trace = Executor(workloads.build("go", scale=0.1)).run()
    shifts = sum(1 for r in trace
                 if r.instr.op.value == "sll" and 1 <= (r.instr.imm or 0) <= 3)
    assert shifts / len(trace) > 0.05


def test_li_is_move_rich():
    from repro.isa.instruction import move_source
    trace = Executor(workloads.build("li", scale=0.1)).run()
    moves = sum(1 for r in trace if move_source(r.instr) is not None)
    assert moves / len(trace) > 0.06


def test_interpreters_use_indirect_jumps():
    for name in ("perl", "python", "li"):
        trace = Executor(workloads.build(name, scale=0.1)).run()
        indirect = sum(1 for r in trace
                       if r.instr.is_indirect() and not r.instr.is_return())
        assert indirect > 0, name


def test_paper_table2_matches_paper_values():
    assert PAPER_TABLE2["m88ksim"].reassoc == 12.9
    assert PAPER_TABLE2["go"].scaled == 9.6
    assert PAPER_TABLE2["gnuplot"].moves == 11.3
    # paper: "slightly more than 13% of the instructions had some form
    # of transformation applied"
    assert abs(sum(row.total for row in PAPER_TABLE2.values()) / 15
               - 13.1) < 0.2


# --- builder utilities -----------------------------------------------------

def test_asm_builder_unique_labels():
    builder = AsmBuilder("t")
    assert builder.label("x") != builder.label("x")


def test_asm_builder_sections():
    builder = AsmBuilder("t")
    builder.data_words("arr", [1, 2, 3])
    builder.emit("main:", "    halt")
    program = builder.build()
    assert program.symbols["arr"] == program.data_base
    assert len(program) == 1


def test_asm_builder_long_word_lists_chunked():
    builder = AsmBuilder("t")
    builder.data_words("big", list(range(40)))
    builder.emit("main:", "    halt")
    program = builder.build()
    import struct
    values = struct.unpack("<40i", bytes(program.data[:160]))
    assert list(values) == list(range(40))


def test_lcg_values_deterministic_and_bounded():
    a = lcg_values(7, 100, 256)
    b = lcg_values(7, 100, 256)
    assert a == b
    assert all(0 <= v < 256 for v in a)
    assert lcg_values(8, 100, 256) != a
