"""CLI and offline-tool coverage for the segment verifier."""

import sys

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_verify_traces_default_benchmarks(capsys):
    code, out = run_cli(capsys, "verify-traces", "--scale", "0.05")
    assert code == 0
    assert "compress" in out and "li" in out
    assert "CLEAN" in out
    assert "per-pass" in out


def test_verify_traces_whole_pipeline(capsys):
    code, out = run_cli(capsys, "verify-traces", "compress",
                        "--scale", "0.05", "--whole-pipeline")
    assert code == 0
    assert "whole-pipeline" in out


def test_verify_traces_extended_opts(capsys):
    code, out = run_cli(capsys, "verify-traces", "li",
                        "--scale", "0.05", "--opts", "extended")
    assert code == 0
    assert "CLEAN" in out


def test_verify_traces_unknown_benchmark(capsys):
    code, out = run_cli(capsys, "verify-traces", "nonesuch")
    assert code == 2
    assert "unknown benchmark" in out


def test_lint_segments_capture_then_lint(tmp_path, capsys, monkeypatch):
    sys.path.insert(0, "tools")
    try:
        import lint_segments
    finally:
        sys.path.pop(0)
    archive = tmp_path / "pairs.jsonl"
    code = lint_segments.main(["capture", "compress", str(archive),
                               "--scale", "0.05", "--limit", "50"])
    out = capsys.readouterr().out
    assert code == 0
    assert "captured" in out and archive.exists()

    code = lint_segments.main(["lint", str(archive)])
    out = capsys.readouterr().out
    assert code == 0
    assert "violations: 0" in out


def test_lint_segments_catches_tampered_archive(tmp_path, capsys):
    """Corrupting an archived optimized segment flips the exit code."""
    import json

    sys.path.insert(0, "tools")
    try:
        import lint_segments
    finally:
        sys.path.pop(0)
    archive = tmp_path / "pairs.jsonl"
    lint_segments.main(["capture", "compress", str(archive),
                        "--scale", "0.05", "--limit", "20"])
    capsys.readouterr()

    tampered = tmp_path / "tampered.jsonl"
    with open(archive) as src, open(tampered, "w") as dst:
        for line in src:
            payload = json.loads(line)
            for instr in payload["optimized"]["instrs"]:
                if instr["op"] == "addi" and instr.get("imm"):
                    instr["imm"] += 4
                    break
            dst.write(json.dumps(payload) + "\n")
    code = lint_segments.main(["lint", str(tampered)])
    out = capsys.readouterr().out
    assert code == 1
    assert "equiv-registers" in out
