"""Full self-audit: mutation-fuzz oracle, baseline gate, CLI verb,
schema-versioned export."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.analysis.selfcheck import run_self_audit
from repro.cli import main
from repro.core.export import (
    SELFAUDIT_SCHEMA_VERSION,
    selfaudit_from_dict,
    selfaudit_to_dict,
)

BASELINE = Path(__file__).resolve().parent.parent / "tools" / \
    "selfaudit_baseline.json"


@pytest.fixture(scope="module")
def report():
    return run_self_audit(with_fuzz=True)


# -- the audit itself ---------------------------------------------------

def test_audit_is_clean(report):
    assert report.errors() == []
    assert report.warnings() == []
    assert report.uncaught_static_holes() == []


def test_fuzz_oracle_observes_every_modeled_field(report):
    fuzz = report.fuzz
    assert fuzz is not None
    assert fuzz.blind_fields() == []
    assert fuzz.uncaught_holes() == []
    assert fuzz.gaps == []
    assert fuzz.ok()
    # Both directions exercised: live probes and seeded hole mutants.
    assert fuzz.results and fuzz.holes
    assert fuzz.warm_cycles > 0


def test_every_hole_is_caught_by_both_layers(report):
    """The acceptance bar: each seeded hole mutant trips the static
    lint AND (for the dynamically seeded ones) the fuzz oracle."""
    assert report.static_holes
    assert all(h.caught for h in report.static_holes)
    assert all(h.caught for h in report.fuzz.holes)


def test_report_matches_checked_in_baseline(report):
    baseline = json.loads(BASELINE.read_text())
    assert report.failures(baseline) == []
    assert report.baseline_payload()["coverage"] == \
        baseline["coverage"]


def test_loosened_coverage_fails_the_gate(report):
    baseline = copy.deepcopy(report.baseline_payload())
    baseline["coverage"]["FunctionalUnits"].append("_phantom_cover")
    failures = report.failures(baseline)
    assert any("loosened coverage" in f and "_phantom_cover" in f
               for f in failures)


def test_new_findings_fail_without_baseline_allowance(report):
    from repro.analysis.selfcheck import SEV_WARNING, AuditFinding
    poked = copy.deepcopy(report)
    poked.findings.append(AuditFinding(
        rule="dict-iteration", severity=SEV_WARNING,
        component="Fake", attr="x", location="fake.py:1",
        message="synthetic"))
    assert poked.failures(json.loads(BASELINE.read_text()))
    # A baseline that allows one such warning absorbs it.
    allowing = poked.baseline_payload()
    assert poked.failures(allowing) == []


# -- export -------------------------------------------------------------

def test_selfaudit_export_round_trip(report):
    payload = json.loads(json.dumps(selfaudit_to_dict(report)))
    assert payload["schema"] == SELFAUDIT_SCHEMA_VERSION
    assert payload["derived"]["errors"] == 0
    assert payload["derived"]["fuzz_ok"] is True
    rebuilt = selfaudit_from_dict(payload)
    again = json.loads(json.dumps(selfaudit_to_dict(rebuilt)))
    assert again == payload


def test_selfaudit_export_rejects_unknown_schema(report):
    payload = selfaudit_to_dict(report)
    payload["schema"] = 999
    with pytest.raises(ValueError):
        selfaudit_from_dict(payload)


# -- CLI verb -----------------------------------------------------------

def test_cli_audit_passes_against_baseline(tmp_path, capsys):
    out = tmp_path / "selfaudit.json"
    code = main(["audit", "--no-fuzz",
                 "--baseline", str(BASELINE),
                 "--json", str(out)])
    assert code == 0
    assert "self-audit passed" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["schema"] == SELFAUDIT_SCHEMA_VERSION
    assert payload["derived"]["errors"] == 0


def test_cli_audit_write_then_gate_round_trip(tmp_path):
    base = tmp_path / "baseline.json"
    assert main(["audit", "--no-fuzz",
                 "--write-baseline", str(base)]) == 0
    written = json.loads(base.read_text())
    assert written == json.loads(BASELINE.read_text())
    assert main(["audit", "--no-fuzz",
                 "--baseline", str(base)]) == 0


def test_cli_analyze_self_delegates_to_audit(capsys):
    code = main(["analyze", "--self"])
    assert code == 0
    out = capsys.readouterr().out
    assert "replay-soundness self-audit" in out
    assert "0 error(s)" in out
