"""Register-file naming tests."""

import pytest

from repro.isa.registers import (NUM_REGS, REG_NAMES, ZERO_REG, reg_name,
                                 reg_number)


def test_register_count():
    assert NUM_REGS == 32
    assert len(REG_NAMES) == 32


def test_zero_register_is_zero():
    assert ZERO_REG == 0
    assert reg_name(0) == "zero"


def test_reg_name_round_trip():
    for num in range(NUM_REGS):
        assert reg_number(reg_name(num)) == num


def test_dollar_prefix_accepted():
    assert reg_number("$t0") == 8
    assert reg_number("$zero") == 0
    assert reg_number("$ra") == 31


def test_numeric_forms():
    assert reg_number("$5") == 5
    assert reg_number("17") == 17
    assert reg_number("r9") == 9


def test_abi_aliases():
    assert reg_number("sp") == 29
    assert reg_number("fp") == 30
    assert reg_number("s8") == 30  # alternate alias for fp
    assert reg_number("gp") == 28
    assert reg_number("at") == 1
    assert reg_number("v0") == 2
    assert reg_number("a3") == 7


def test_case_insensitive():
    assert reg_number("$T0") == 8
    assert reg_number("RA") == 31


def test_out_of_range_numeric_rejected():
    with pytest.raises(KeyError):
        reg_number("$32")
    with pytest.raises(KeyError):
        reg_number("99")


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        reg_number("$bogus")
    with pytest.raises(KeyError):
        reg_number("")


def test_names_unique():
    assert len(set(REG_NAMES)) == len(REG_NAMES)
