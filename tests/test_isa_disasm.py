"""Disassembler tests."""

from repro.isa.disasm import disassemble, dump_listing
from repro.isa.instruction import (GuardAnnotation, Instruction,
                                   ScaleAnnotation)
from repro.isa.opcodes import Op


def test_r3_format():
    text = disassemble(Instruction(Op.ADD, rd=10, rs=8, rt=9))
    assert text == "add $t2, $t0, $t1"


def test_immediate_format():
    assert disassemble(Instruction(Op.ADDI, rd=8, rs=0, imm=-4)) == \
        "addi $t0, $zero, -4"


def test_memory_formats():
    assert disassemble(Instruction(Op.LW, rd=8, rs=29, imm=8)) == \
        "lw $t0, 8($sp)"
    assert disassemble(Instruction(Op.SW, rt=8, rs=29, imm=-4)) == \
        "sw $t0, -4($sp)"
    assert disassemble(Instruction(Op.LWX, rd=8, rs=9, rt=10)) == \
        "lwx $t0, $t1, $t2"


def test_control_formats():
    assert disassemble(Instruction(Op.BEQ, rs=8, rt=0, imm=16)) == \
        "beq $t0, $zero, 16"
    assert disassemble(Instruction(Op.J, imm=0x4000)) == "j 16384"
    assert disassemble(Instruction(Op.JR, rs=31)) == "jr $ra"
    assert disassemble(Instruction(Op.JALR, rd=31, rs=9)) == \
        "jalr $ra, $t1"


def test_nullary():
    assert disassemble(Instruction(Op.HALT)) == "halt"
    assert disassemble(Instruction(Op.NOP)) == "nop"


def test_annotations_rendered():
    instr = Instruction(Op.ADD, rd=8, rs=9, rt=10,
                        scale=ScaleAnnotation(src=11, shamt=2),
                        reassociated=True)
    text = disassemble(instr)
    assert "scaled($t3<<2)" in text and "reassoc" in text


def test_move_annotation():
    instr = Instruction(Op.ADDI, rd=8, rs=9, imm=0, move_flag=True)
    assert "; move" in disassemble(instr)


def test_guard_annotation():
    instr = Instruction(Op.ADDI, rd=8, rs=9, imm=1,
                        guard=GuardAnnotation(reg=13,
                                              execute_if_zero=False))
    assert "guard($t5!=0)" in disassemble(instr)


def test_annotations_suppressible():
    instr = Instruction(Op.ADDI, rd=8, rs=9, imm=0, move_flag=True)
    assert ";" not in disassemble(instr, show_annotations=False)


def test_dump_listing_uses_pc():
    instrs = [Instruction(Op.NOP, pc=0x1000),
              Instruction(Op.HALT, pc=0x1004)]
    listing = dump_listing(instrs)
    assert "00001000:" in listing and "00001004:" in listing


def test_dump_listing_synthesizes_pc():
    listing = dump_listing([Instruction(Op.NOP), Instruction(Op.NOP)],
                           base_pc=0x2000)
    assert "00002004:" in listing
