"""Seeded-mutation tests for the segment verifier.

Each test hand-builds a clean (original, optimized) pair, breaks the
rewrite in exactly one way, and asserts the verifier reports it via
exactly the expected rule — the suppression machinery must keep the
equivalence checker from double-reporting defects a structural rule
already explains, and vice versa.
"""

from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.instruction import GuardAnnotation, Instruction, \
    ScaleAnnotation, make_nop
from repro.isa.opcodes import Op
from repro.tracecache.segment import BranchInfo, TraceSegment
from repro.verify import ERROR, RULES, SegmentVerifier


def seg(instrs, branches=(), start_pc=0x1000):
    for idx, instr in enumerate(instrs):
        if instr.pc is None:
            instr.pc = start_pc + 4 * idx
        instr.orig_index = idx
    return TraceSegment(start_pc=start_pc, instrs=list(instrs),
                        branches=list(branches))


def check(original, optimized, config=None, **kw):
    verifier = SegmentVerifier(config or OptimizationConfig.all())
    return verifier.check(original, optimized, **kw)


def assert_exactly(violations, rule_id):
    """The mutation is caught by *rule_id* and nothing else."""
    errors = {v.rule for v in violations if v.severity == ERROR}
    assert errors == {rule_id}, (
        f"expected exactly {rule_id!r}, got {sorted(errors)}: "
        + "; ".join(v.render() for v in violations))


# ----------------------------------------------------------------------
# one seeded mutation per structural rule
# ----------------------------------------------------------------------

def test_def_before_use_catches_squashed_live_def():
    original = seg([
        Instruction(Op.ADDI, rd=8, rs=0, imm=4),
        Instruction(Op.ADDI, rd=9, rs=0, imm=8),
    ])
    optimized = original.clone()
    optimized.instrs[0] = make_nop()
    optimized.instrs[0].pc = original.instrs[0].pc
    assert_exactly(check(original, optimized), "def-before-use")


def test_move_marking_catches_flag_on_non_move():
    original = seg([Instruction(Op.ADD, rd=10, rs=8, rt=9)])
    optimized = original.clone()
    optimized.instrs[0].move_flag = True
    assert_exactly(check(original, optimized), "move-marking")


def test_move_marking_catches_guarded_move():
    original = seg([
        Instruction(Op.NOP),
        Instruction(Op.ADDI, rd=9, rs=8, imm=0),
    ])
    optimized = original.clone()
    optimized.instrs[1].move_flag = True
    optimized.instrs[1].guard = GuardAnnotation(reg=11,
                                                execute_if_zero=True)
    violations = check(original, optimized)
    assert any(v.rule == "move-marking" for v in violations)


def test_scale_shift_limit_catches_wide_shift():
    original = seg([
        Instruction(Op.SLL, rd=9, rs=8, imm=7),
        Instruction(Op.ADD, rd=10, rs=9, rt=11),
    ])
    optimized = original.clone()
    optimized.instrs[1].scale = ScaleAnnotation(src=8, shamt=7)
    assert_exactly(check(original, optimized), "scale-shift-limit")


def test_scale_provenance_catches_wrong_source():
    original = seg([
        Instruction(Op.SLL, rd=9, rs=8, imm=2),
        Instruction(Op.ADD, rd=10, rs=9, rt=11),
    ])
    optimized = original.clone()
    optimized.instrs[1].scale = ScaleAnnotation(src=13, shamt=2)
    assert_exactly(check(original, optimized), "scale-provenance")


def test_scale_provenance_catches_redefined_source():
    original = seg([
        Instruction(Op.SLL, rd=9, rs=8, imm=2),
        Instruction(Op.ADDI, rd=8, rs=8, imm=4),   # redefines the source
        Instruction(Op.ADD, rd=10, rs=9, rt=11),
    ])
    optimized = original.clone()
    optimized.instrs[2].scale = ScaleAnnotation(src=8, shamt=2)
    assert_exactly(check(original, optimized), "scale-provenance")


def test_placement_order_catches_broken_permutation():
    original = seg([
        Instruction(Op.ADDI, rd=8, rs=0, imm=1),
        Instruction(Op.ADDI, rd=9, rs=0, imm=2),
    ])
    optimized = original.clone()
    optimized.slots = [1, 1]
    assert_exactly(check(original, optimized), "placement-order")


def test_mem_branch_order_catches_reordered_stores():
    a = Instruction(Op.SW, rs=9, rt=8, imm=0, pc=0x1000)
    b = Instruction(Op.SW, rs=9, rt=8, imm=0, pc=0x1004)
    original = seg([a, b])
    # Swap the two (otherwise identical) stores; renumber orig_index so
    # only the memory-order projection notices.
    optimized = seg([b.copy(), a.copy()])
    assert_exactly(check(original, optimized), "mem-branch-order")


def test_branch_preserved_catches_altered_displacement():
    branch = Instruction(Op.BEQ, rs=8, rt=0, imm=8, pc=0x1000)
    original = seg(
        [branch, Instruction(Op.ADDI, rd=9, rs=0, imm=1)],
        branches=[BranchInfo(0, 0x1000, direction=False,
                             promoted=False)])
    optimized = original.clone()
    optimized.instrs[0].imm = 12
    assert_exactly(check(original, optimized), "branch-preserved")


def test_branch_preserved_catches_dropped_record():
    branch = Instruction(Op.BEQ, rs=8, rt=0, imm=8, pc=0x1000)
    original = seg(
        [branch, Instruction(Op.ADDI, rd=9, rs=0, imm=1)],
        branches=[BranchInfo(0, 0x1000, direction=False,
                             promoted=False)])
    optimized = original.clone()
    optimized.branches = []        # record dropped, branch NOT squashed
    assert_exactly(check(original, optimized), "branch-preserved")


def _predicated_pair():
    """A valid predication conversion (clean by construction)."""
    branch = Instruction(Op.BEQ, rs=8, rt=0, imm=8, pc=0x1000)
    original = seg(
        [branch, Instruction(Op.ADDI, rd=9, rs=10, imm=1)],
        branches=[BranchInfo(0, 0x1000, direction=False,
                             promoted=False)])
    optimized = original.clone()
    squashed = make_nop()
    squashed.pc = branch.pc
    optimized.instrs[0] = squashed
    optimized.instrs[1].guard = GuardAnnotation(reg=8,
                                                execute_if_zero=False)
    optimized.branches = []
    return original, optimized


def test_valid_predication_conversion_is_clean():
    original, optimized = _predicated_pair()
    assert check(original, optimized) == []


def test_guard_sound_catches_inverted_sense():
    original, optimized = _predicated_pair()
    optimized.instrs[1].guard = GuardAnnotation(reg=8,
                                                execute_if_zero=True)
    assert_exactly(check(original, optimized), "guard-sound")


def test_guard_sound_catches_wrong_register():
    original, optimized = _predicated_pair()
    optimized.instrs[1].guard = GuardAnnotation(reg=13,
                                                execute_if_zero=False)
    assert_exactly(check(original, optimized), "guard-sound")


def test_imm_encodable_catches_overflowed_reassociation():
    original = seg([
        Instruction(Op.ADDI, rd=9, rs=8, imm=20000),
        Instruction(Op.ADDI, rd=10, rs=9, imm=20000),
    ])
    optimized = original.clone()
    optimized.instrs[1].rs = 8
    optimized.instrs[1].imm = 40000
    optimized.instrs[1].reassociated = True
    assert_exactly(check(original, optimized), "imm-encodable")


def test_pass_surface_catches_mutation_outside_surface():
    """A semantically neutral mutation (marking a genuine move) is
    still flagged when the pass's surface does not allow it."""
    original = seg([
        Instruction(Op.ADDI, rd=8, rs=0, imm=4),
        Instruction(Op.ADDI, rd=9, rs=8, imm=0),
    ])
    optimized = original.clone()
    optimized.instrs[1].move_flag = True
    assert_exactly(
        check(original, optimized, pass_name="placement",
              surface=frozenset({"slots"})),
        "pass-surface")


def test_pass_surface_catches_identity_field_mutation():
    original = seg([Instruction(Op.ADDI, rd=8, rs=0, imm=4)])
    optimized = original.clone()
    optimized.instrs[0].orig_index = 7
    violations = check(original, optimized, pass_name="moves",
                       surface=frozenset({"move_flag"}))
    assert any(v.rule == "pass-surface" for v in violations)


def test_unmarked_move_warns_after_moves_pass():
    original = seg([Instruction(Op.OR, rd=9, rs=8, rt=0)])
    optimized = original.clone()
    violations = check(
        original, optimized, pass_name="moves",
        surface=frozenset({"move_flag", "move_bypassed",
                           "rd", "rs", "rt"}))
    assert [v.rule for v in violations] == ["unmarked-move"]
    assert violations[0].severity == "warning"


# ----------------------------------------------------------------------
# one seeded mutation per semantic (equivalence) rule
# ----------------------------------------------------------------------

def test_equiv_registers_catches_tampered_immediate():
    original = seg([
        Instruction(Op.ADDI, rd=9, rs=8, imm=4),
        Instruction(Op.ADDI, rd=10, rs=9, imm=4),
    ])
    optimized = original.clone()
    optimized.instrs[1].rs = 8
    optimized.instrs[1].imm = 12          # should be 8
    optimized.instrs[1].reassociated = True
    assert_exactly(check(original, optimized), "equiv-registers")


def test_equiv_memory_catches_changed_store_value():
    original = seg([Instruction(Op.SW, rs=9, rt=8, imm=0)])
    optimized = original.clone()
    optimized.instrs[0].rt = 11           # different live-in value
    assert_exactly(check(original, optimized), "equiv-memory")


def test_equiv_branches_catches_changed_condition_operand():
    branch = Instruction(Op.BEQ, rs=8, rt=0, imm=8, pc=0x1000)
    original = seg(
        [branch, Instruction(Op.ADDI, rd=9, rs=0, imm=1)],
        branches=[BranchInfo(0, 0x1000, direction=False,
                             promoted=False)])
    optimized = original.clone()
    optimized.instrs[0].rs = 11           # different live-in register
    assert_exactly(check(original, optimized), "equiv-branches")


# ----------------------------------------------------------------------
# registry plumbing
# ----------------------------------------------------------------------

def test_rule_registry_catalogue():
    structural = {"def-before-use", "move-marking", "scale-shift-limit",
                  "scale-provenance", "placement-order",
                  "mem-branch-order", "branch-preserved", "guard-sound",
                  "imm-encodable", "pass-surface", "unmarked-move"}
    semantic = {"equiv-registers", "equiv-memory", "equiv-branches"}
    assert structural | semantic <= set(RULES)
    for rule_id in semantic:
        assert RULES[rule_id].semantic
    for rule_id in structural:
        assert not RULES[rule_id].semantic
        assert RULES[rule_id].hint      # every rule ships a fix-it hint


def test_custom_rule_registration():
    from repro.verify import RuleInput, rule, run_rules

    @rule("test-only-rule", description="demo", hint="demo hint")
    def _check(inp):
        yield inp.violation("test-only-rule", None, "always fires")

    try:
        inp = RuleInput(original=seg([Instruction(Op.NOP)]),
                        optimized=seg([Instruction(Op.NOP)]))
        found = run_rules(inp, rule_ids=["test-only-rule"])
        assert [v.rule for v in found] == ["test-only-rule"]
        assert found[0].hint == "demo hint"
    finally:
        del RULES["test-only-rule"]
