"""Functional executor tests."""

import pytest

from repro.errors import ExecutionError
from repro.asm import assemble
from repro.machine import ArchState, Executor, Memory, run_program
from repro.machine.executor import execute_sequence
from tests.helpers import run_asm


def test_arithmetic_program():
    _, trace = run_asm("""
    main:
        li   $t0, 6
        li   $t1, 7
        mult $t2, $t0, $t1
        move $a0, $t2
        li   $v0, 1
        syscall
        halt
    """)
    assert trace.output == [42]


def test_loop_sum():
    _, trace = run_asm("""
    main:
        li   $t0, 10
        move $t1, $zero
    loop:
        add  $t1, $t1, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $t1
        li   $v0, 1
        syscall
        halt
    """)
    assert trace.output == [55]


def test_memory_program():
    _, trace = run_asm("""
        .data
    arr: .word 3, 1, 4, 1, 5
        .text
    main:
        la   $s0, arr
        li   $t0, 5
        move $t1, $zero
    loop:
        lw   $t2, 0($s0)
        add  $t1, $t1, $t2
        addi $s0, $s0, 4
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $t1
        li   $v0, 1
        syscall
        halt
    """)
    assert trace.output == [14]


def test_call_and_return():
    _, trace = run_asm("""
    main:
        li   $a0, 5
        jal  double
        move $a0, $v0
        li   $v0, 1
        syscall
        halt
    double:
        add  $v0, $a0, $a0
        ret
    """)
    assert trace.output == [10]


def test_recursion():
    _, trace = run_asm("""
    main:
        li   $a0, 6
        jal  fact
        move $a0, $v0
        li   $v0, 1
        syscall
        halt
    fact:
        blez $a0, base
        addi $sp, $sp, -8
        sw   $ra, 0($sp)
        sw   $a0, 4($sp)
        addi $a0, $a0, -1
        jal  fact
        lw   $t0, 4($sp)
        mult $v0, $v0, $t0
        lw   $ra, 0($sp)
        addi $sp, $sp, 8
        ret
    base:
        li   $v0, 1
        ret
    """)
    assert trace.output == [720]


def test_trace_records_control_flow():
    _, trace = run_asm("""
    main:
        li   $t0, 2
    loop:
        addi $t0, $t0, -1
        bgtz $t0, loop
        halt
    """)
    branches = [r for r in trace if r.instr.is_cond_branch()]
    assert [r.taken for r in branches] == [True, False]
    taken = branches[0]
    assert taken.next_pc != taken.pc + 4


def test_trace_records_memory():
    _, trace = run_asm("""
        .data
    v: .word 9
        .text
    main:
        la  $t0, v
        lw  $t1, 0($t0)
        sw  $t1, 4($t0)
        halt
    """)
    loads = [r for r in trace if r.instr.is_load()]
    stores = [r for r in trace if r.instr.is_store()]
    assert len(loads) == 1 and len(stores) == 1
    assert stores[0].mem_addr == loads[0].mem_addr + 4
    assert stores[0].is_store and not loads[0].is_store


def test_syscall_print_char():
    _, trace = run_asm("""
    main:
        li $v0, 11
        li $a0, 65
        syscall
        halt
    """)
    assert trace.output == ["A"]


def test_syscall_exit():
    _, trace = run_asm("""
    main:
        li $v0, 10
        syscall
        nop
        halt
    """)
    # exits at the syscall; the nop/halt never retire
    assert trace[-1].instr.op.value == "syscall"


def test_runaway_program_raises():
    prog = assemble("loop: j loop\n")
    with pytest.raises(ExecutionError) as err:
        Executor(prog).run(max_instructions=1000)
    assert "did not halt" in str(err.value)


def test_stepping_halted_machine_raises():
    prog = assemble("halt\n")
    ex = Executor(prog)
    ex.step()
    assert ex.halted
    with pytest.raises(ExecutionError):
        ex.step()


def test_fetch_outside_text_raises():
    prog = assemble("jr $t0\n")  # t0 = 0: jumps to unmapped address
    ex = Executor(prog)
    ex.step()
    with pytest.raises(ExecutionError):
        ex.step()


def test_loader_initializes_sp_gp_pc():
    prog = assemble(".data\nx: .word 1\n.text\nmain: halt\n")
    ex = Executor(prog)
    assert ex.state.pc == prog.entry
    assert ex.state.read_reg(29) > 0
    assert ex.state.read_reg(28) == prog.data_base


def test_r0_stays_zero():
    _, trace = run_asm("""
    main:
        addi $zero, $zero, 55
        move $a0, $zero
        li   $v0, 1
        syscall
        halt
    """)
    assert trace.output == [0]


def test_run_program_convenience():
    prog = assemble("main: halt\n")
    trace = run_program(prog)
    assert len(trace) == 1


def test_execute_sequence_straight_line():
    prog = assemble("""
        addi $t0, $zero, 4
        sll  $t1, $t0, 2
        add  $t2, $t1, $t0
        halt
    """)
    state, mem = ArchState(), Memory()
    execute_sequence(prog.instructions[:3], state, mem)
    assert state.read_reg(10) == 20


def test_dynamic_op_mix():
    _, trace = run_asm("""
    main:
        lw   $t0, 0($sp)
        sw   $t0, 4($sp)
        add  $t1, $t0, $t0
        halt
    """)
    mix = trace.dynamic_op_mix()
    assert mix["load"] == 1 and mix["store"] == 1
    assert trace.conditional_branch_count() == 0
