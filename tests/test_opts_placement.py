"""Instruction placement pass tests (paper §4.5)."""

from repro.fillunit.dependency import mark_dependencies
from repro.fillunit.opts.base import OptimizationConfig, PassContext
from repro.fillunit.opts.placement import PlacementPass
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.tracecache.segment import TraceSegment
from tests.helpers import build_segments

PLACE = OptimizationConfig.only("placement")


def place(instrs, num_clusters=4, cluster_size=4):
    seg = TraceSegment(start_pc=0, instrs=instrs)
    for idx, instr in enumerate(instrs):
        instr.pc = 4 * idx
        instr.orig_index = idx
    seg.deps = mark_dependencies(instrs)
    ctx = PassContext(num_clusters, cluster_size,
                      OptimizationConfig.only("placement"))
    PlacementPass().apply(seg, ctx)
    return seg


def cluster_of(seg, idx, cluster_size=4, num_clusters=4):
    return (seg.slots[idx] // cluster_size) % num_clusters


def test_independent_instructions_keep_order():
    instrs = [Instruction(Op.ADDI, rd=8 + i, rs=0, imm=i) for i in range(8)]
    seg = place(instrs)
    assert seg.slots == list(range(8))


def test_consumer_follows_producer_into_cluster():
    # producer in slot 0 (cluster 0); 4 independent fillers would push
    # the consumer to cluster 1 under identity order — placement pulls
    # it back to cluster 0.
    instrs = [
        Instruction(Op.ADDI, rd=8, rs=0, imm=1),          # producer
        Instruction(Op.ADDI, rd=20, rs=0, imm=0),
        Instruction(Op.ADDI, rd=21, rs=0, imm=0),
        Instruction(Op.ADDI, rd=22, rs=0, imm=0),
        Instruction(Op.ADD, rd=9, rs=8, rt=8),            # consumer
    ]
    seg = place(instrs)
    assert cluster_of(seg, 0) == 0
    assert cluster_of(seg, 4) == 0          # consumer joined cluster 0
    assert seg.slots[4] in (1, 2, 3)


def test_two_chains_gather_into_distinct_clusters():
    # Two four-deep chains interleaved in program order fill a
    # 2-cluster x 2-FU machine exactly; placement should give each
    # chain its own cluster.
    instrs = [
        Instruction(Op.ADDI, rd=8, rs=0, imm=1),     # a0
        Instruction(Op.ADDI, rd=16, rs=0, imm=2),    # b0
        Instruction(Op.ADD, rd=9, rs=8, rt=8),       # a1
        Instruction(Op.ADD, rd=17, rs=16, rt=16),    # b1
        Instruction(Op.ADD, rd=10, rs=9, rt=9),      # a2
        Instruction(Op.ADD, rd=18, rs=17, rt=17),    # b2
        Instruction(Op.ADD, rd=11, rs=10, rt=10),    # a3
        Instruction(Op.ADD, rd=19, rs=18, rt=18),    # b3
    ]
    seg = place(instrs, num_clusters=2, cluster_size=2)
    chain_a = {cluster_of(seg, i, 2, 2) for i in (0, 2, 4, 6)}
    chain_b = {cluster_of(seg, i, 2, 2) for i in (1, 3, 5, 7)}
    assert chain_a == {0}
    assert chain_b == {1}


def test_slots_always_a_permutation():
    instrs = [Instruction(Op.ADD, rd=8 + (i % 3), rs=8, rt=9)
              for i in range(11)]
    seg = place(instrs)
    assert sorted(seg.slots) == list(range(11))


def test_logical_order_never_changes():
    """We model the steering-field variant: placement assigns slots but
    never permutes the architectural instruction order (original-order
    information stays available for the memory scheduler)."""
    source = """
    main:
        addi $t0, $zero, 1
        addi $t1, $zero, 2
        add  $t2, $t0, $t0
        add  $t3, $t1, $t1
        sw   $t2, 0($sp)
        lw   $t4, 0($sp)
        halt
    """
    _, _, plain = build_segments(source)
    _, _, placed = build_segments(source, PLACE)
    assert [i.op for i in placed[0].instrs] == [i.op for i in plain[0].instrs]
    assert placed[0].path_key == plain[0].path_key


def test_stats_report_movement():
    instrs = [
        Instruction(Op.ADDI, rd=8, rs=0, imm=1),
        Instruction(Op.ADDI, rd=20, rs=0, imm=0),
        Instruction(Op.ADDI, rd=21, rs=0, imm=0),
        Instruction(Op.ADDI, rd=22, rs=0, imm=0),
        Instruction(Op.ADD, rd=9, rs=8, rt=8),
    ]
    seg = TraceSegment(start_pc=0, instrs=instrs)
    for idx, instr in enumerate(instrs):
        instr.pc = 4 * idx
    seg.deps = mark_dependencies(instrs)
    stats = PlacementPass().apply(
        seg, PassContext(4, 4, OptimizationConfig.only("placement")))
    assert stats["placed_instructions"] == 5
    assert stats["placement_moved"] > 0


def test_single_instruction_segment():
    seg = place([Instruction(Op.ADDI, rd=8, rs=0, imm=1)])
    assert seg.slots == [0]


def test_placement_recomputes_missing_deps():
    seg = TraceSegment(start_pc=0, instrs=[
        Instruction(Op.ADDI, rd=8, rs=0, imm=1, pc=0),
        Instruction(Op.ADD, rd=9, rs=8, rt=8, pc=4),
    ])
    assert seg.deps is None
    PlacementPass().apply(
        seg, PassContext(4, 4, OptimizationConfig.only("placement")))
    assert seg.deps is not None
