"""Cycle-accounting tests: the partition must be exact — classes sum
to the run's total cycles, always."""

import pytest

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.errors import ConfigError
from repro.telemetry import Telemetry
from repro.telemetry.attribution import (
    CYCLE_CLASSES,
    CycleAccountant,
    diff_attribution,
    render_attribution,
)
from tests.helpers import run_asm

LOOP = """
main:
    li   $t9, 60
loop:
    addi $t0, $t0, 1
    sll  $t1, $t0, 2
    add  $t2, $t1, $t0
    sw   $t2, 0($sp)
    lw   $t3, 0($sp)
    blt  $t0, $t9, loop
    halt
"""


def run_with_attribution(source=LOOP, config=None):
    _, trace = run_asm(source)
    telemetry = Telemetry()
    model = PipelineModel(config or SimConfig.tiny(), telemetry=telemetry)
    return model.run(trace, "t", "r")


# -- synthetic streams --------------------------------------------------

def test_back_to_back_retires_are_all_base():
    acct = CycleAccountant()
    for cycle in range(1, 11):
        acct.on_retire(fetch=cycle - 1, complete=cycle - 1, retire=cycle)
    attribution = acct.finish(10)
    assert attribution["base"] == 10
    assert sum(attribution.values()) == 10


def test_same_cycle_retires_counted_once():
    acct = CycleAccountant()
    for _ in range(4):
        acct.on_retire(fetch=0, complete=0, retire=1)
    assert acct.finish(1) == dict.fromkeys(CYCLE_CLASSES, 0) | {"base": 1}


def test_frontend_gap_split_newest_first():
    acct = CycleAccountant()
    acct.on_retire(fetch=0, complete=0, retire=1)
    # Next instr fetched at 10: gap of 9 frontend cycles; 3 were an
    # icache round trip (tc miss), 2 redirect, rest starvation.
    acct.on_retire(fetch=10, complete=10, retire=11,
                   recovery=2, fetch_extra=3)
    attribution = acct.finish(11)
    assert attribution["tc_miss"] == 3
    assert attribution["mispredict_recovery"] == 2
    assert attribution["fetch_starved"] == 4
    assert attribution["base"] == 2
    assert sum(attribution.values()) == 11


def test_extra_without_trace_cache_is_fetch_starved():
    acct = CycleAccountant()
    acct.on_retire(fetch=0, complete=0, retire=1)
    acct.on_retire(fetch=5, complete=5, retire=6,
                   fetch_extra=4, extra_is_tc_miss=False)
    attribution = acct.finish(6)
    assert attribution["tc_miss"] == 0
    assert attribution["fetch_starved"] == 4


def test_backend_gap_with_bypass_carve():
    acct = CycleAccountant(bypass_penalty=1)
    acct.on_retire(fetch=0, complete=0, retire=1)
    # fetched immediately, executed for 5 cycles, last operand paid the
    # cross-cluster penalty.
    acct.on_retire(fetch=1, complete=6, retire=7, bypass_penalized=True)
    attribution = acct.finish(7)
    assert attribution["bypass_delay"] == 1
    assert attribution["issue_bound"] == 4
    assert sum(attribution.values()) == 7


def test_recovery_debt_settles_in_backend_gap():
    # The redirect delay hid behind retirement (fetch <= last retire);
    # the refill stall must still be charged to the mispredict.
    acct = CycleAccountant()
    acct.on_retire(fetch=0, complete=4, retire=5)    # 4 issue_bound
    acct.on_retire(fetch=5, complete=10, retire=11, recovery=3)
    attribution = acct.finish(11)
    assert attribution["mispredict_recovery"] == 3
    assert attribution["issue_bound"] == 4 + 2
    assert sum(attribution.values()) == 11


def test_drain_class():
    acct = CycleAccountant()
    acct.on_retire(fetch=0, complete=0, retire=1)
    # completed at 2, retired at 6: 3 commit-backpressure cycles.
    acct.on_retire(fetch=1, complete=2, retire=6)
    attribution = acct.finish(6)
    assert attribution["drain"] == 3


def test_finish_raises_on_lost_cycles():
    acct = CycleAccountant()
    acct.on_retire(fetch=0, complete=0, retire=1)
    with pytest.raises(ConfigError):
        acct.finish(100)


# -- real runs ----------------------------------------------------------

def test_classes_sum_exactly_to_cycles():
    result = run_with_attribution()
    assert set(result.attribution) == set(CYCLE_CLASSES)
    assert sum(result.attribution.values()) == result.cycles
    assert result.attribution["base"] > 0


def test_sum_exact_without_trace_cache():
    config = SimConfig.tiny()
    config.trace_cache_enabled = False
    result = run_with_attribution(config=config)
    assert sum(result.attribution.values()) == result.cycles
    assert result.attribution["tc_miss"] == 0   # no TC to miss


def test_attribution_empty_without_session():
    _, trace = run_asm(LOOP)
    result = PipelineModel(SimConfig.tiny()).run(trace, "t", "r")
    assert result.attribution == {}


def test_telemetry_session_does_not_change_timing():
    """The bit-for-bit requirement: observing a run must not alter it."""
    _, trace = run_asm(LOOP)
    plain = PipelineModel(SimConfig.tiny()).run(trace, "t", "r")
    observed = run_with_attribution()
    disabled = PipelineModel(
        SimConfig.tiny(),
        telemetry=Telemetry(enabled=False)).run(trace, "t", "r")
    assert plain.cycles == observed.cycles == disabled.cycles
    assert plain.ipc == observed.ipc == disabled.ipc
    assert plain.mispredicts == observed.mispredicts


# -- rendering ----------------------------------------------------------

def test_render_and_diff():
    result = run_with_attribution()
    text = render_attribution(result.attribution, result.cycles)
    for name in CYCLE_CLASSES:
        assert name in text
    diff = diff_attribution("a", result.attribution,
                            "b", result.attribution)
    assert "base" in diff and "total" in diff
