"""Workload lint rules, on crafted defects and the real workloads."""

from repro import workloads
from repro.analysis.static import analyze_program
from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.lint import lint_counts, lint_program
from repro.asm import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.program.image import Program


def _rules(findings):
    return {f.rule for f in findings}


def test_bad_branch_target_error():
    program = Program(instructions=[
        Instruction(Op.ADDI, rd=8, rs=0, imm=1),
        Instruction(Op.BEQ, rs=8, rt=0, imm=0x5000),
        Instruction(Op.HALT),
    ])
    findings = lint_program(build_cfg(program))
    bad = [f for f in findings if f.rule == "bad-branch-target"]
    assert len(bad) == 1
    assert bad[0].severity == "error"
    assert bad[0].pc == program.text_base + 4
    assert "out-of-text" in bad[0].message
    assert f"{program.text_base + 4:#x}" in bad[0].render()


def test_misaligned_target_is_distinguished():
    program = Program(instructions=[
        Instruction(Op.BEQ, rs=0, rt=0, imm=6),
        Instruction(Op.HALT),
        Instruction(Op.HALT),
    ])
    findings = lint_program(build_cfg(program))
    bad = [f for f in findings if f.rule == "bad-branch-target"]
    assert len(bad) == 1 and "misaligned" in bad[0].message


def test_unreachable_block_warning():
    findings = lint_program(build_cfg(assemble("""
main:
    halt
dead:
    halt
""")))
    assert _rules(findings) == {"unreachable-block"}
    (finding,) = findings
    assert finding.severity == "warning"


def test_undefined_read_error():
    findings = lint_program(build_cfg(assemble("""
main:
    add  $t1, $t0, $zero
    halt
""")))
    undefined = [f for f in findings if f.rule == "undefined-read"]
    assert len(undefined) == 1
    assert undefined[0].severity == "error"
    assert "$t0" in undefined[0].message


def test_undefined_read_respects_joins():
    """A register defined on only one path into a read still has a
    reaching definition — may-analysis, not must — so no finding."""
    findings = lint_program(build_cfg(assemble("""
main:
    addi $t0, $zero, 1
    beq  $t0, $zero, skip
    addi $t1, $zero, 2
skip:
    add  $t2, $t1, $zero
    halt
""")))
    assert "undefined-read" not in _rules(findings)


def test_dead_write_warning():
    findings = lint_program(build_cfg(assemble("""
main:
    addi $t0, $zero, 5
    halt
""")))
    dead = [f for f in findings if f.rule == "dead-write"]
    assert len(dead) == 1
    assert dead[0].severity == "warning"
    assert "$t0" in dead[0].message


def test_lint_counts_shape():
    findings = lint_program(build_cfg(assemble("""
main:
    addi $t0, $zero, 5
    addi $t1, $zero, 6
    halt
""")))
    assert lint_counts(findings) == {"dead-write": 2}
    assert lint_counts([]) == {}


def test_all_workloads_are_lint_clean():
    """The acceptance bar: zero lint findings of either severity on
    every registered workload (also locked in by the CI baseline)."""
    for name in workloads.names():
        report = analyze_program(workloads.build(name, 0.2), name)
        assert report.lint_errors() == [], name
        assert report.lint_warnings() == [], name
