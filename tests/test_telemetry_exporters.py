"""Chrome trace-event and OpenMetrics exporters."""

import json

import pytest

from repro import workloads
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine.executor import Executor
from repro.telemetry import Telemetry
from repro.telemetry.events import Event
from repro.telemetry.exporters import (
    parse_openmetrics,
    render_openmetrics,
    trace_events,
    write_chrome_trace,
)
from repro.telemetry.exporters.chrometrace import (
    TIMEBASE_PIDS,
    archive_to_trace,
    events_to_span_records,
)
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.spans import CYCLES, WALL, SpanRecorder

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")


@pytest.fixture(scope="module")
def traced_trace_file(tmp_path_factory):
    """A full traced run exported to disk, as the CLI would do it."""
    program = workloads.build("compress", 0.2)
    trace = Executor(program).run()
    config = SimConfig.paper(OptimizationConfig.all())
    config.verify_fill = True
    telemetry = Telemetry(spans=True)
    archive = telemetry.attach_memory()
    engine = Engine(config, telemetry=telemetry)
    engine.run(trace, "compress")
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    count = write_chrome_trace(path, telemetry.spans,
                               events=archive.events,
                               metadata={"benchmark": "compress"})
    return path, count


# -- chrome trace -------------------------------------------------------

def test_trace_file_is_valid_trace_event_json(traced_trace_file):
    path, count = traced_trace_file
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert len(events) == count > 0
    assert payload["otherData"] == {"benchmark": "compress"}
    for event in events:
        for key in REQUIRED_KEYS:
            assert key in event, f"event missing {key!r}: {event}"


def test_trace_file_timestamps_monotonic_per_track(traced_trace_file):
    path, _ = traced_trace_file
    events = json.loads(path.read_text())["traceEvents"]
    last_ts = {}
    for event in events:
        if event["ph"] == "M":
            continue
        key = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(key, float("-inf")), (
            f"timestamps not monotonic on track {key}")
        last_ts[key] = event["ts"]


def test_trace_file_contains_lifecycle_spans(traced_trace_file):
    path, _ = traced_trace_file
    events = json.loads(path.read_text())["traceEvents"]
    names = {e["name"] for e in events}
    for want in ("segment.collect", "segment.optimize",
                 "segment.verify", "tc.insert", "tc.reuse",
                 "tc.residency", "run.finished"):
        assert want in names, f"missing {want}"


def test_timebases_map_to_distinct_processes():
    rec = SpanRecorder()
    rec.span("sim", "a", 0.0, 1.0)
    rec.span("host", "b", 0.0, 1.0, timebase=WALL)
    events = trace_events(rec.records)
    pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert pids == {TIMEBASE_PIDS[CYCLES], TIMEBASE_PIDS[WALL]}
    meta = [e for e in events if e["ph"] == "M"]
    process_names = {e["pid"]: e["args"]["name"] for e in meta
                     if e["name"] == "process_name"}
    assert set(process_names) == pids
    thread_names = {(e["pid"], e["args"]["name"]) for e in meta
                    if e["name"] == "thread_name"}
    assert (TIMEBASE_PIDS[CYCLES], "sim") in thread_names
    assert (TIMEBASE_PIDS[WALL], "host") in thread_names


def test_instants_are_thread_scoped():
    rec = SpanRecorder()
    rec.instant("t", "ping", 5.0, pc=1)
    (event,) = [e for e in trace_events(rec.records) if e["ph"] == "i"]
    assert event["s"] == "t" and event["ts"] == 5.0


def test_events_to_span_records_filters_kinds():
    events = [Event("segment.built", 10, {"start_pc": 64}),
              Event("instr.retired", 11, {"pc": 4}),     # high-freq: out
              Event("tc.evict", 12, {"start_pc": 8})]
    records = events_to_span_records(events)
    assert [r["name"] for r in records] == ["segment.built", "tc.evict"]
    assert records[0]["track"] == "events.segment"
    assert all(r["timebase"] == CYCLES and r["kind"] == "instant"
               for r in records)


def test_archive_to_trace_roundtrip(tmp_path):
    archive = tmp_path / "events.jsonl"
    archive.write_text(
        '{"kind":"run.started","cycle":0,"benchmark":"x"}\n'
        '{"kind":"run.finished","cycle":99,"benchmark":"x"}\n')
    out = tmp_path / "trace.json"
    count = archive_to_trace(archive, out)
    events = json.loads(out.read_text())["traceEvents"]
    assert len(events) == count
    names = {e["name"] for e in events}
    assert {"run.started", "run.finished"} <= names


# -- openmetrics --------------------------------------------------------

def _populated_registry() -> TelemetryRegistry:
    registry = TelemetryRegistry()
    registry.counter("fetch.tc.hits").add(41)
    registry.counter("fetch.tc.hits").add()
    registry.gauge("window.occupancy").set(17)
    hist = registry.histogram("fillunit.segment.length")
    for value in (1, 3, 9, 15, 15):
        hist.observe(value)
    return registry


def test_openmetrics_rendering_shape():
    text = render_openmetrics(_populated_registry())
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_fetch_tc_hits counter" in text
    assert "repro_fetch_tc_hits_total 42" in text
    assert "# TYPE repro_window_occupancy gauge" in text
    assert "repro_window_occupancy 17" in text
    assert "# TYPE repro_fillunit_segment_length histogram" in text
    assert 'repro_fillunit_segment_length_bucket{le="+Inf"} 5' in text
    # HELP keeps the original dotted scope (reversible mapping).
    assert "# HELP repro_fetch_tc_hits scope fetch.tc.hits" in text


def test_openmetrics_roundtrip():
    registry = _populated_registry()
    parsed = parse_openmetrics(render_openmetrics(registry))
    assert parsed["repro_fetch_tc_hits_total"] == 42
    assert parsed["repro_window_occupancy"] == 17
    hist = parsed["repro_fillunit_segment_length"]
    assert hist["count"] == 5 and hist["sum"] == 43
    assert hist["buckets"]["+Inf"] == 5
    # Cumulative buckets are monotone nondecreasing.
    finite = [v for k, v in sorted(
        ((k, v) for k, v in hist["buckets"].items() if k != "+Inf"),
        key=lambda kv: int(kv[0]))]
    assert finite == sorted(finite)
    assert finite[-1] <= hist["buckets"]["+Inf"]


def test_openmetrics_roundtrip_full_run():
    program = workloads.build("compress", 0.1)
    trace = Executor(program).run()
    telemetry = Telemetry()
    Engine(SimConfig.paper(OptimizationConfig.all()),
           telemetry=telemetry).run(trace, "compress")
    text = render_openmetrics(telemetry.registry)
    parsed = parse_openmetrics(text)
    flat = telemetry.registry.flat()
    for scope, value in flat.items():
        name = "repro_" + scope.replace(".", "_")
        if isinstance(value, dict):
            assert parsed[name]["count"] == value["count"]
        elif name + "_total" in parsed:
            assert parsed[name + "_total"] == value
        else:
            assert parsed[name] == value


def test_parse_requires_eof():
    with pytest.raises(ValueError, match="EOF"):
        parse_openmetrics("repro_x_total 1\n")
