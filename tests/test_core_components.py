"""Backend component tests: clusters, bypass, RS, rename, retire,
memory scheduler, configuration."""

import pytest

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.clusters import (BypassNetwork, FunctionalUnits,
                                 ReservationStations)
from repro.core.config import SimConfig
from repro.core.memsched import MemoryScheduler
from repro.core.rename import RenameUnit, RetireUnit
from repro.errors import ConfigError


# --- bypass network --------------------------------------------------------

def test_same_cluster_forward_free():
    bypass = BypassNetwork(cluster_size=4, penalty=1)
    assert bypass.effective_ready(10, 2, 2) == 10


def test_cross_cluster_forward_penalized():
    bypass = BypassNetwork(cluster_size=4, penalty=1)
    assert bypass.effective_ready(10, 1, 2) == 11


def test_architected_values_free_everywhere():
    bypass = BypassNetwork(cluster_size=4, penalty=1)
    assert bypass.effective_ready(0, None, 3) == 0


def test_cluster_of_slot():
    bypass = BypassNetwork(cluster_size=4, penalty=1)
    assert [bypass.cluster_of_slot(s) for s in (0, 3, 4, 15)] == [0, 0, 1, 3]


# --- functional units -------------------------------------------------------

def test_fu_accepts_one_per_cycle():
    fus = FunctionalUnits(2)
    assert fus.reserve(0, 10) == 10
    assert fus.reserve(0, 10) == 11     # same FU, next cycle
    assert fus.reserve(1, 10) == 10     # other FU free


def test_fu_skips_reserved_cycles():
    fus = FunctionalUnits(1)
    fus.reserve(0, 5)
    fus.reserve(0, 6)
    assert fus.reserve(0, 5) == 7


def test_fu_compaction_preserves_recent_state():
    fus = FunctionalUnits(1)
    for i in range(5000):
        fus.reserve(0, i * 2)
    # after compaction, recent reservations still respected
    latest = fus.reserve(0, 9998)
    assert latest != 9998 or True    # cycle may shift; must not crash
    assert fus.reserve(0, latest) == latest + 1


# --- reservation stations ----------------------------------------------------

def test_rs_admits_until_full():
    rs = ReservationStations(1, entries_per_fu=2)
    assert rs.admit(0, 10) == 10
    rs.occupy(0, 20)
    rs.occupy(0, 30)
    # full until cycle 20; a new entry must wait for the release
    assert rs.admit(0, 15) == 20


def test_rs_frees_after_dispatch():
    rs = ReservationStations(1, entries_per_fu=2)
    rs.occupy(0, 12)
    rs.occupy(0, 14)
    assert rs.admit(0, 13) == 13   # the entry dispatched at 12 freed up
    assert rs.admit(0, 20) == 20   # everything drained by then


# --- rename ------------------------------------------------------------------

def test_rename_width_limit():
    rename = RenameUnit(issue_width=2, max_blocks_per_cycle=3,
                        window_size=64)
    cycles = [rename.rename(0, False, 0) for _ in range(5)]
    assert cycles == [1, 1, 2, 2, 3]


def test_rename_block_limit():
    rename = RenameUnit(issue_width=16, max_blocks_per_cycle=2,
                        window_size=64)
    cycles = [rename.rename(0, True, 0) for _ in range(4)]
    assert cycles == [1, 1, 2, 2]
    assert rename.block_limit_stalls > 0


def test_rename_window_backpressure():
    rename = RenameUnit(issue_width=16, max_blocks_per_cycle=3,
                        window_size=8)
    assert rename.rename(0, False, window_release=50) == 51
    assert rename.window_stalls == 1


def test_rename_never_goes_backward():
    rename = RenameUnit(16, 3, 64)
    first = rename.rename(10, False, 0)
    second = rename.rename(5, False, 0)   # earlier fetch, later rename
    assert second >= first


# --- retire --------------------------------------------------------------------

def test_retire_in_order_and_width():
    retire = RetireUnit(retire_width=2)
    assert retire.retire(10) == 11
    assert retire.retire(5) == 11    # in-order: can't retire before prior
    assert retire.retire(5) == 12    # width exhausted at 11
    assert retire.retire(20) == 21


# --- memory scheduler -------------------------------------------------------

def make_sched():
    return MemoryScheduler(MemoryHierarchy(HierarchyConfig(
        l1i_size=1024, l1d_size=1024, l2_size=8192)), forward_window=64)


def test_load_blocked_by_unknown_store_address():
    sched = make_sched()
    sched.store_timing(0x100, agen_done=50, data_ready=50)
    # A load whose AGEN completes earlier must wait for the store AGEN.
    ready = sched.load_timing(0x200, agen_done=10)
    assert ready >= 51
    assert sched.blocked_loads == 1


def test_store_to_load_forwarding():
    sched = make_sched()
    done = sched.store_timing(0x100, agen_done=10, data_ready=30)
    assert done == 30
    ready = sched.load_timing(0x100, agen_done=32)
    assert ready == max(33, 30)
    assert sched.forwarded_loads == 1


def test_forwarding_window_expires():
    sched = make_sched()
    sched.store_timing(0x100, agen_done=10, data_ready=10)
    sched.load_timing(0x100, agen_done=500)   # far beyond the window
    assert sched.forwarded_loads == 0


def test_cold_load_pays_memory_latency():
    sched = make_sched()
    ready = sched.load_timing(0x4000, agen_done=10)
    assert ready == 10 + 1 + 56


# --- configuration -----------------------------------------------------------

def test_paper_config_defaults():
    config = SimConfig.paper()
    assert config.fetch_width == 16
    assert config.num_fus == 16
    assert config.num_clusters == 4
    assert config.trace_cache.num_lines == 2048
    assert config.fill_latency == 5
    assert config.optimizations.enabled_names() == []


def test_config_validation():
    with pytest.raises(ConfigError):
        SimConfig(num_clusters=8, cluster_size=4, fetch_width=16)
    with pytest.raises(ConfigError):
        SimConfig(window_size=4)
    with pytest.raises(ConfigError):
        SimConfig(fill_latency=0)


def test_with_optimizations_copies():
    from repro.fillunit.opts.base import OptimizationConfig
    base = SimConfig.paper()
    opt = base.with_optimizations(OptimizationConfig.all())
    assert base.optimizations.enabled_names() == []
    assert len(opt.optimizations.enabled_names()) == 4


def test_with_fill_latency():
    assert SimConfig.paper().with_fill_latency(10).fill_latency == 10


def test_optimization_config_helpers():
    from repro.fillunit.opts.base import OptimizationConfig
    assert OptimizationConfig.only("moves").enabled_names() == ["moves"]
    assert OptimizationConfig.all().enabled_names() == \
        ["moves", "reassoc", "scaled_adds", "placement"]
    with pytest.raises(ValueError):
        OptimizationConfig.only("bogus")
