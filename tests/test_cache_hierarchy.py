"""Memory hierarchy latency tests."""

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy


def make():
    return MemoryHierarchy(HierarchyConfig(
        l1i_size=1024, l1d_size=1024, l2_size=8192,
        l2_latency=6, memory_latency=50))


def test_cold_load_pays_full_trip():
    h = make()
    assert h.load(0x1000) == 56           # L2 miss: 6 + 50


def test_warm_load_is_free_beyond_l1():
    h = make()
    h.load(0x1000)
    assert h.load(0x1000) == 0


def test_l2_hit_costs_l2_latency():
    h = make()
    h.load(0x1000)                        # fills L1D and L2
    h.l1d.invalidate(0x1000)              # drop only the L1 copy
    assert h.load(0x1000) == 6


def test_instruction_and_data_paths_are_separate():
    h = make()
    h.fetch_instr(0x2000)
    assert h.l1i.probe(0x2000)
    assert not h.l1d.probe(0x2000)
    h.load(0x3000)
    assert h.l1d.probe(0x3000)
    assert not h.l1i.probe(0x3000)


def test_l2_is_unified():
    h = make()
    h.fetch_instr(0x4000)
    assert h.l2.probe(0x4000)
    # A data load to the line an instruction fetch brought into L2
    # hits there (6 cycles), not memory (56).
    assert h.load(0x4000) == 6


def test_store_updates_residency_without_latency_result():
    h = make()
    h.store(0x5000)
    assert h.l1d.probe(0x5000)
    assert h.load(0x5000) == 0


def test_paper_configuration_defaults():
    h = MemoryHierarchy()
    assert h.l1i.size_bytes == 4 * 1024
    assert h.l1d.size_bytes == 64 * 1024
    assert h.l2.size_bytes == 1024 * 1024
    assert h.config.l2_latency == 6
    assert h.config.memory_latency == 50


def test_flush_empties_all_levels():
    h = make()
    h.load(0x1000)
    h.fetch_instr(0x2000)
    h.flush()
    assert not h.l1d.probe(0x1000)
    assert not h.l1i.probe(0x2000)
    assert not h.l2.probe(0x1000)


def test_stats_summary_shape():
    h = make()
    h.load(0x100)
    summary = h.stats_summary()
    assert set(summary) == {"l1i", "l1d", "l2"}
    assert summary["l1d"] == (0, 1)
