"""Statistics helper tests."""

import pytest

from repro.analysis.stats import (arithmetic_mean, geometric_mean,
                                  harmonic_mean, improvement_percent,
                                  summarize_improvements)


def test_arithmetic_mean():
    assert arithmetic_mean([1, 2, 3]) == 2.0


def test_geometric_mean():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    assert geometric_mean([4]) == pytest.approx(4.0)


def test_geometric_mean_no_overflow_on_long_large_inputs():
    """A running-product implementation hits inf (or 0.0) long before
    the true mean leaves float range; mean-of-logs must not."""
    big = geometric_mean([1e300] * 100)
    assert big == pytest.approx(1e300, rel=1e-9)
    small = geometric_mean([1e-300] * 100)
    assert small == pytest.approx(1e-300, rel=1e-9)
    mixed = geometric_mean([1e300, 1e-300] * 50)
    assert mixed == pytest.approx(1.0, rel=1e-9)


def test_harmonic_mean():
    assert harmonic_mean([1, 1]) == pytest.approx(1.0)
    assert harmonic_mean([2, 6]) == pytest.approx(3.0)


def test_means_reject_empty():
    for fn in (arithmetic_mean, geometric_mean, harmonic_mean):
        with pytest.raises(ValueError):
            fn([])


def test_geometric_harmonic_reject_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([1, 0])
    with pytest.raises(ValueError):
        harmonic_mean([1, -2])


def test_mean_inequality():
    data = [1.0, 2.0, 8.0]
    assert harmonic_mean(data) < geometric_mean(data) < arithmetic_mean(data)


def test_improvement_percent():
    assert improvement_percent(2.0, 3.0) == pytest.approx(50.0)
    assert improvement_percent(4.0, 3.0) == pytest.approx(-25.0)
    assert improvement_percent(0.0, 3.0) == 0.0


def test_summarize_improvements():
    summary = summarize_improvements({"a": 5.0, "b": 1.0, "c": 9.0})
    assert summary["mean"] == pytest.approx(5.0)
    assert summary["min"] == ("b", 1.0)
    assert summary["max"] == ("c", 9.0)
    assert [name for name, _ in summary["rows"]] == ["b", "a", "c"]


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize_improvements({})
