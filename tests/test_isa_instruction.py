"""Instruction structure tests: operands, classification, annotations."""

import pytest

from repro.isa.instruction import (Instruction, ScaleAnnotation, make_nop,
                                   move_source)
from repro.isa.opcodes import Op


def test_dest_per_format():
    assert Instruction(Op.ADD, rd=3, rs=1, rt=2).dest() == 3
    assert Instruction(Op.ADDI, rd=4, rs=1, imm=5).dest() == 4
    assert Instruction(Op.LW, rd=5, rs=29, imm=0).dest() == 5
    assert Instruction(Op.LWX, rd=6, rs=1, rt=2).dest() == 6
    assert Instruction(Op.LUI, rd=7, imm=1).dest() == 7
    assert Instruction(Op.JAL, imm=0x1000).dest() == 31
    assert Instruction(Op.JALR, rd=31, rs=9).dest() == 31


def test_no_dest_formats():
    assert Instruction(Op.SW, rt=3, rs=29, imm=0).dest() is None
    assert Instruction(Op.SWX, rd=3, rs=1, rt=2).dest() is None
    assert Instruction(Op.BEQ, rs=1, rt=2, imm=8).dest() is None
    assert Instruction(Op.J, imm=0x1000).dest() is None
    assert Instruction(Op.JR, rs=31).dest() is None
    assert make_nop().dest() is None


def test_write_to_zero_register_has_no_dest():
    assert Instruction(Op.ADD, rd=0, rs=1, rt=2).dest() is None


def test_sources_per_format():
    assert Instruction(Op.ADD, rd=3, rs=1, rt=2).sources() == (1, 2)
    assert Instruction(Op.ADDI, rd=3, rs=1, imm=4).sources() == (1,)
    assert Instruction(Op.SLL, rd=3, rs=1, imm=2).sources() == (1,)
    assert Instruction(Op.LW, rd=3, rs=29, imm=0).sources() == (29,)
    assert Instruction(Op.SW, rt=3, rs=29, imm=0).sources() == (29, 3)
    assert Instruction(Op.SWX, rd=3, rs=1, rt=2).sources() == (3, 1, 2)
    assert Instruction(Op.BEQ, rs=1, rt=2, imm=8).sources() == (1, 2)
    assert Instruction(Op.BLEZ, rs=1, imm=8).sources() == (1,)
    assert Instruction(Op.JR, rs=31).sources() == (31,)
    assert Instruction(Op.LUI, rd=3, imm=1).sources() == ()
    assert Instruction(Op.J, imm=0x1000).sources() == ()


def test_scaled_sources_replace_rs_slot():
    instr = Instruction(Op.LWX, rd=3, rs=1, rt=2,
                        scale=ScaleAnnotation(src=9, shamt=2))
    assert instr.sources() == (9, 2)


def test_scaled_sources_storex_replaces_address_slot():
    instr = Instruction(Op.SWX, rd=3, rs=1, rt=2,
                        scale=ScaleAnnotation(src=9, shamt=1))
    # value (rd=3) untouched; address base (rs=1) replaced by 9.
    assert instr.sources() == (3, 9, 2)


def test_marked_move_sources_collapse_to_move_source():
    instr = Instruction(Op.ADDI, rd=3, rs=7, imm=0, move_flag=True)
    assert instr.sources() == (7,)


def test_mem_split_load():
    instr = Instruction(Op.LW, rd=3, rs=29, imm=8)
    addr, value = instr.mem_split()
    assert addr == (29,)
    assert value is None


def test_mem_split_store_shares_register():
    instr = Instruction(Op.SW, rt=7, rs=7, imm=0)
    addr, value = instr.mem_split()
    assert addr == (7,)
    assert value == 7


def test_mem_split_storex_with_scale():
    instr = Instruction(Op.SWX, rd=3, rs=1, rt=2,
                        scale=ScaleAnnotation(src=9, shamt=2))
    addr, value = instr.mem_split()
    assert addr == (9, 2)
    assert value == 3


@pytest.mark.parametrize("instr,expected", [
    (Instruction(Op.ADDI, rd=3, rs=7, imm=0), 7),
    (Instruction(Op.ORI, rd=3, rs=7, imm=0), 7),
    (Instruction(Op.XORI, rd=3, rs=7, imm=0), 7),
    (Instruction(Op.ADD, rd=3, rs=7, rt=0), 7),
    (Instruction(Op.ADD, rd=3, rs=0, rt=7), 7),
    (Instruction(Op.OR, rd=3, rs=7, rt=0), 7),
    (Instruction(Op.XOR, rd=3, rs=0, rt=7), 7),
    (Instruction(Op.SUB, rd=3, rs=7, rt=0), 7),
    (Instruction(Op.SLL, rd=3, rs=7, imm=0), 7),
    (Instruction(Op.SRA, rd=3, rs=7, imm=0), 7),
    (Instruction(Op.ANDI, rd=3, rs=7, imm=0), 0),   # a zero: move from r0
    (Instruction(Op.ADD, rd=3, rs=0, rt=0), 0),
])
def test_move_detection_positive(instr, expected):
    assert move_source(instr) == expected


@pytest.mark.parametrize("instr", [
    Instruction(Op.ADDI, rd=3, rs=7, imm=1),
    Instruction(Op.ADD, rd=3, rs=7, rt=8),
    Instruction(Op.SUB, rd=3, rs=0, rt=7),    # negation, not a move
    Instruction(Op.SLL, rd=3, rs=7, imm=2),
    Instruction(Op.AND, rd=3, rs=7, rt=0),    # AND with zero is zero...
    Instruction(Op.NOR, rd=3, rs=7, rt=0),    # NOT, not a move
    Instruction(Op.ADDI, rd=0, rs=7, imm=0),  # writes r0: a no-op
    Instruction(Op.LW, rd=3, rs=7, imm=0),
])
def test_move_detection_negative(instr):
    assert move_source(instr) is None


def test_and_with_zero_not_detected_as_move_of_value():
    # AND rd, rs, r0 produces zero but our detector intentionally only
    # handles idioms that preserve an input operand or load zero via
    # ANDI; ADD/OR idioms cover the common compiler output.
    assert move_source(Instruction(Op.AND, rd=3, rs=7, rt=0)) is None


def test_control_classification_helpers():
    beq = Instruction(Op.BEQ, rs=1, rt=2, imm=8)
    assert beq.is_cond_branch() and beq.is_ctrl()
    jal = Instruction(Op.JAL, imm=0x1000)
    assert jal.is_call() and not jal.is_cond_branch()
    jr_ra = Instruction(Op.JR, rs=31)
    assert jr_ra.is_return() and jr_ra.is_indirect()
    jr_other = Instruction(Op.JR, rs=9)
    assert not jr_other.is_return() and jr_other.is_indirect()
    jalr = Instruction(Op.JALR, rd=31, rs=9)
    assert jalr.is_indirect() and jalr.is_call()
    syscall = Instruction(Op.SYSCALL)
    assert syscall.is_serializing()


def test_segment_termination_rules():
    """Returns, indirect jumps and serializing instructions terminate;
    calls and direct jumps do not (paper §3)."""
    assert Instruction(Op.JR, rs=31).terminates_segment()
    assert Instruction(Op.JR, rs=9).terminates_segment()
    assert Instruction(Op.JALR, rd=31, rs=9).terminates_segment()
    assert Instruction(Op.SYSCALL).terminates_segment()
    assert Instruction(Op.HALT).terminates_segment()
    assert not Instruction(Op.JAL, imm=0x1000).terminates_segment()
    assert not Instruction(Op.J, imm=0x1000).terminates_segment()
    assert not Instruction(Op.BEQ, rs=1, rt=2, imm=8).terminates_segment()


def test_copy_is_independent():
    instr = Instruction(Op.ADDI, rd=3, rs=7, imm=0)
    clone = instr.copy()
    clone.move_flag = True
    clone.rs = 9
    assert not instr.move_flag
    assert instr.rs == 7


def test_mem_classification():
    assert Instruction(Op.LW, rd=1, rs=2, imm=0).is_load()
    assert Instruction(Op.SW, rt=1, rs=2, imm=0).is_store()
    assert Instruction(Op.LWX, rd=1, rs=2, rt=3).is_mem()
    assert not Instruction(Op.ADD, rd=1, rs=2, rt=3).is_mem()
