"""Wrong-path fetch pollution tests."""

from dataclasses import replace

import pytest

from repro.asm import assemble
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.core.simulator import Simulator
from repro.core.wrongpath import WrongPathFetcher
from repro.errors import ConfigError
from repro.machine.tracing import CommittedInstr
from tests.helpers import run_asm

HARD_BRANCH = """
main:
    li   $t9, 600
    li   $t5, 12345
    li   $t7, 30341
loop:
    mult $t5, $t5, $t7
    addi $t5, $t5, 13
    srl  $t6, $t5, 7
    andi $t6, $t6, 1
    beq  $t6, $zero, skip
    addi $t1, $t1, 17
skip:
    addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def make_fetcher(program):
    hierarchy = MemoryHierarchy(HierarchyConfig(
        l1i_size=512, l1d_size=1024, l2_size=8192))
    return WrongPathFetcher(program, hierarchy), hierarchy


def test_wrong_target_direction():
    prog = assemble(HARD_BRANCH)
    fetcher, _ = make_fetcher(prog)
    branch_pc = prog.symbols["loop"] + 16
    branch = prog.instr_at(branch_pc)
    assert branch.op.value == "beq"
    taken = CommittedInstr(0, branch_pc, branch,
                           branch_pc + branch.imm, taken=True)
    not_taken = CommittedInstr(0, branch_pc, branch,
                               branch_pc + 4, taken=False)
    # predicted the opposite of actual in both cases
    assert fetcher.wrong_target(taken) == branch_pc + 4
    assert fetcher.wrong_target(not_taken) == branch_pc + branch.imm


def test_pollution_touches_icache():
    prog = assemble(HARD_BRANCH)
    fetcher, hierarchy = make_fetcher(prog)
    before = hierarchy.l1i.stats.accesses
    fetcher.pollute(prog.text_base, cycles=4)
    assert hierarchy.l1i.stats.accesses > before
    assert fetcher.instructions > 0
    assert fetcher.fetch_cycles <= 4


def test_walk_stops_at_indirect():
    prog = assemble("main:\n    jr $t0\n    addi $t1, $t1, 1\n    halt\n")
    fetcher, _ = make_fetcher(prog)
    fetcher.pollute(prog.text_base, cycles=10)
    assert fetcher.instructions == 1     # only the jr itself
    assert fetcher.fetch_cycles == 1


def test_walk_stops_outside_text():
    prog = assemble("main:\n    halt\n")
    fetcher, _ = make_fetcher(prog)
    fetcher.pollute(prog.text_end + 0x100, cycles=10)
    assert fetcher.fetch_cycles == 0


def test_walk_follows_direct_jumps():
    prog = assemble("""
    main:
        j far
        halt
    far:
        addi $t0, $t0, 1
        halt
    """)
    fetcher, _ = make_fetcher(prog)
    fetcher.pollute(prog.text_base, cycles=3)
    # group 1: the j (follows to far); group 2: far's instructions
    assert fetcher.instructions >= 3


def test_cycle_budget_capped():
    prog = assemble("main:\n" + "    addi $t0, $t0, 1\n" * 100 + "    halt\n")
    fetcher, _ = make_fetcher(prog)
    fetcher.max_cycles = 5
    fetcher.pollute(prog.text_base, cycles=500)
    assert fetcher.fetch_cycles == 5


def test_requires_program_image():
    _, trace = run_asm("main:\n    halt\n")
    config = replace(SimConfig.tiny(), model_wrong_path=True)
    with pytest.raises(ConfigError):
        PipelineModel(config).run(trace, "t", "r")


def test_end_to_end_pollution_costs_cycles():
    prog = assemble(HARD_BRANCH)
    base = Simulator(SimConfig.tiny()).run(prog, "t", "plain")
    polluted = Simulator(replace(SimConfig.tiny(),
                                 model_wrong_path=True)).run(prog, "t",
                                                             "wp")
    assert polluted.wrong_path_fetches > 0
    assert base.wrong_path_fetches == 0
    # Pollution perturbs I-cache state; on a tiny loop it may even act
    # as a prefetch, so assert the timing moved only modestly in either
    # direction rather than a strict cost.
    assert abs(polluted.cycles - base.cycles) < 0.1 * base.cycles


def test_committed_results_identical_shape():
    """Pollution changes timing, never the committed stream."""
    prog = assemble(HARD_BRANCH)
    base = Simulator(SimConfig.tiny()).run(prog, "t", "plain")
    polluted = Simulator(replace(SimConfig.tiny(),
                                 model_wrong_path=True)).run(prog, "t",
                                                             "wp")
    assert polluted.instructions == base.instructions
    assert polluted.cond_branches == base.cond_branches
