"""Span recorder API and segment-lifecycle instrumentation."""

import pytest

from repro import workloads
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine.executor import Executor
from repro.telemetry import NULL_SPANS, SpanRecorder, Telemetry
from repro.telemetry.spans import CYCLES, WALL, active_or_none


# -- recorder API -------------------------------------------------------

def test_complete_span_and_instant():
    rec = SpanRecorder()
    rec.span("t", "work", 10.0, 5.0, start_pc=0x40)
    rec.instant("t", "tick", 12.0)
    assert len(rec) == 2
    span, instant = rec.records
    assert span["kind"] == "span" and span["dur"] == 5.0
    assert span["timebase"] == CYCLES
    assert span["args"] == {"start_pc": 0x40}
    assert instant["kind"] == "instant" and instant["dur"] == 0.0


def test_open_span_lifecycle_and_annotate():
    rec = SpanRecorder()
    handle = rec.begin("t", "job", 0.0, timebase=WALL, label="a")
    handle.annotate(extra=1).end(4.0, outcome="done")
    assert len(rec) == 1
    record = rec.records[0]
    assert record["ts"] == 0.0 and record["dur"] == 4.0
    assert record["timebase"] == WALL
    assert record["args"] == {"label": "a", "extra": 1,
                              "outcome": "done"}
    handle.end(9.0)  # double-end is a no-op
    assert len(rec) == 1


def test_end_open_closes_per_timebase():
    rec = SpanRecorder()
    rec.begin("t", "cycles-span", 1.0)
    rec.begin("t", "wall-span", 2.0, timebase=WALL)
    assert rec.end_open(100.0) == 1          # only the CYCLES span
    assert rec.by_name("cycles-span")[0]["dur"] == 99.0
    assert rec.end_open(200.0, timebase=WALL) == 1


def test_negative_duration_clamped():
    rec = SpanRecorder()
    rec.span("t", "x", 10.0, -3.0)
    assert rec.records[0]["dur"] == 0.0


def test_tracks_in_first_seen_order():
    rec = SpanRecorder()
    rec.instant("b", "x", 0.0)
    rec.instant("a", "x", 1.0)
    rec.instant("b", "y", 2.0)
    assert rec.tracks() == ["b", "a"]


def test_now_wall_is_monotonic_microseconds():
    rec = SpanRecorder()
    first = rec.now_wall()
    second = rec.now_wall()
    assert 0.0 <= first <= second


def test_null_recorder_is_inert():
    handle = NULL_SPANS.begin("t", "x", 0.0)
    handle.annotate(a=1).end(1.0)
    NULL_SPANS.span("t", "x", 0.0, 1.0)
    NULL_SPANS.instant("t", "x", 0.0)
    assert len(NULL_SPANS) == 0
    assert NULL_SPANS.records == []
    assert NULL_SPANS.end_open(5.0) == 0
    assert not NULL_SPANS.enabled


def test_active_or_none():
    live = SpanRecorder()
    assert active_or_none(live) is live
    assert active_or_none(NULL_SPANS) is None
    assert active_or_none(None) is None


def test_telemetry_session_spans_flag():
    assert Telemetry().spans is NULL_SPANS
    assert Telemetry(spans=True).spans.enabled
    assert Telemetry(enabled=False, spans=True).spans is NULL_SPANS
    session = Telemetry()
    recorder = session.enable_spans()
    assert session.spans is recorder and recorder.enabled
    assert session.enable_spans() is recorder   # idempotent
    with pytest.raises(RuntimeError):
        Telemetry(enabled=False).enable_spans()


# -- lifecycle instrumentation ------------------------------------------

@pytest.fixture(scope="module")
def traced_run():
    program = workloads.build("compress", 0.2)
    trace = Executor(program).run()
    config = SimConfig.paper(OptimizationConfig.all())
    config.verify_fill = True
    telemetry = Telemetry(spans=True)
    result = Engine(config, telemetry=telemetry).run(trace, "compress")
    return config, trace, telemetry.spans, result


def test_lifecycle_span_families_present(traced_run):
    _, _, recorder, _ = traced_run
    names = {record["name"] for record in recorder.records}
    for want in ("segment.collect", "segment.optimize",
                 "segment.verify", "pass.moves", "pass.placement",
                 "tc.insert", "tc.residency", "tc.reuse"):
        assert want in names, f"missing {want} spans"
    assert recorder.tracks() == ["fillunit", "tracecache"]


def test_pass_spans_nest_inside_optimize_window(traced_run):
    config, _, recorder, _ = traced_run
    optimize = recorder.by_name("segment.optimize")
    assert optimize, "no optimize spans"
    windows = {(r["ts"], r["args"]["start_pc"]): r for r in optimize}
    for record in recorder.records:
        if not record["name"].startswith("pass."):
            continue
        parents = [w for (ts, _), w in windows.items()
                   if ts <= record["ts"]
                   and record["ts"] + record["dur"]
                   <= ts + w["dur"] + 1e-9]
        assert parents, f"orphan pass span at ts={record['ts']}"
    for record in optimize:
        assert record["dur"] == float(config.fill_latency)


def test_verify_span_takes_last_slot(traced_run):
    config, _, recorder, _ = traced_run
    verify = recorder.by_name("segment.verify")
    assert verify
    n_passes = len(OptimizationConfig.all().enabled_names())
    share = config.fill_latency / (n_passes + 1)
    optimize_by_ts = {r["ts"]: r for r in
                      recorder.by_name("segment.optimize")}
    for record in verify:
        start_of_window = record["ts"] - n_passes * share
        assert start_of_window in optimize_by_ts
        assert record["dur"] == pytest.approx(share)
        assert "violations" in record["args"]


def test_residency_spans_all_closed(traced_run):
    config, _, recorder, result = traced_run
    assert not recorder._open, "spans left open after run()"
    # A segment filled in the run's last cycles becomes visible up to
    # fill_latency after the final retire; its residency span starts
    # there and is clamped to zero length by end_open().
    horizon = result.cycles + config.fill_latency + 1e-9
    for record in recorder.by_name("tc.residency"):
        assert record["ts"] + record["dur"] <= horizon


def test_cycles_identical_with_spans_on_and_off(traced_run):
    config, trace, _, traced_result = traced_run
    plain = Engine(SimConfig.from_dict(config.to_dict())).run(
        trace, "compress")
    assert plain.cycles == traced_result.cycles
    assert plain.instructions == traced_result.instructions
    session = Telemetry()   # session without spans
    with_session = Engine(
        SimConfig.from_dict(config.to_dict()),
        telemetry=session).run(trace, "compress")
    assert with_session.cycles == traced_result.cycles
    assert len(session.spans) == 0


def test_engine_without_session_has_no_spans():
    engine = Engine(SimConfig.paper())
    assert engine.spans is None
    assert engine.fill_unit.spans is None
    assert engine.trace_cache.spans is None
