"""Structural tests for the remaining figure regenerators (4-6) and
the figure plumbing not covered by test_harness.py."""

import pytest

from repro.harness import ExperimentRunner, figures

SUBSET = ["m88ksim", "go", "tex"]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=0.12, benchmarks=SUBSET)


def test_figure4_m88ksim_dominates(runner):
    fig = figures.figure4(runner)
    assert fig.rows["m88ksim"] == max(fig.rows.values())
    assert "reassociation" in fig.title


def test_figure5_index_codes_lead(runner):
    fig = figures.figure5(runner)
    assert max(fig.rows["go"], fig.rows["tex"]) >= fig.rows["m88ksim"]


def test_figure6_positive_mean(runner):
    fig = figures.figure6(runner)
    assert fig.mean > -1.0
    assert set(fig.rows) == set(SUBSET)


def test_all_figures_returns_six(runner):
    results = figures.all_figures(runner)
    assert [f.figure for f in results] == [
        f"Figure {n}" for n in range(3, 9)]


def test_single_opt_figures_share_baseline_cache():
    fresh = ExperimentRunner(scale=0.05, benchmarks=["m88ksim"])
    figures.figure3(fresh)
    cached = fresh.service.stats["simulated"]
    figures.figure5(fresh)
    # baseline results reused: only the scaled-add run was added
    assert fresh.service.stats["simulated"] == cached + 1
    figures.figure5(fresh)
    assert fresh.service.stats["simulated"] == cached + 1  # cached now


def test_figure_render_smoke(runner):
    for fig in (figures.figure4(runner), figures.figure6(runner)):
        text = fig.render()
        assert fig.figure in text
        assert "m88ksim" in text


def test_figure8_default_latencies(runner):
    fig = figures.figure8(runner)
    assert fig.extra["latencies"] == (1, 5, 10)
    assert len(next(iter(fig.rows.values()))) == 3
    # the headline column is the 5-cycle one
    assert fig.extra["columns"][1] == "5-cycle"
