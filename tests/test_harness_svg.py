"""SVG chart rendering tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.harness.figures import FigureResult
from repro.harness.svgchart import figure_to_svg, write_all_figures


def make_figure(rows):
    return FigureResult("Figure 9", "test chart", rows, 5.0,
                        "a claim & such")


def test_single_series_svg_is_valid_xml():
    svg = figure_to_svg(make_figure({"alpha": 10.0, "beta": 2.5}))
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    rects = [el for el in root.iter() if el.tag.endswith("rect")]
    assert len(rects) == 2


def test_labels_and_values_present():
    svg = figure_to_svg(make_figure({"alpha": 10.0}))
    assert "alpha" in svg and "10.0" in svg
    assert "a claim &amp; such" in svg     # escaped


def test_negative_bars_colored_differently():
    svg = figure_to_svg(make_figure({"down": -4.0, "up": 4.0}))
    assert "#b04a4a" in svg


def test_multi_series_with_legend():
    figure = make_figure({"a": (1.0, 2.0, 3.0), "b": (2.0, 2.0, 2.0)})
    svg = figure_to_svg(figure, series_labels=("one", "two", "three"))
    root = ET.fromstring(svg)
    rects = [el for el in root.iter() if el.tag.endswith("rect")]
    assert len(rects) == 6 + 3       # bars + legend swatches
    assert "one" in svg and "three" in svg


def test_bar_widths_scale_with_peak():
    svg = figure_to_svg(make_figure({"big": 10.0, "small": 5.0}))
    root = ET.fromstring(svg)
    widths = sorted(float(el.get("width"))
                    for el in root.iter() if el.tag.endswith("rect"))
    assert widths[1] == pytest.approx(2 * widths[0], rel=0.01)


def test_write_all_figures(tmp_path):
    from repro.harness.experiment import ExperimentRunner
    runner = ExperimentRunner(scale=0.05, benchmarks=["compress"])
    paths = write_all_figures(runner, str(tmp_path))
    assert len(paths) == 6
    for path in paths:
        ET.parse(path)      # every file is well-formed XML
