"""Opportunity detectors: static site sets per fill-unit pass."""

from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.opportunities import (
    block_pressure,
    find_opportunities,
    possible_move_sources,
)
from repro.asm import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

T0, T1, T2, T3 = 8, 9, 10, 11


def _sites(source, **kwargs):
    cfg = build_cfg(assemble(source))
    return cfg.program, find_opportunities(cfg, **kwargs)


def test_direct_move_idioms_are_sites():
    program, sites = _sites("""
main:
    addi $t0, $zero, 5
    addi $t1, $t0, 0
    or   $t2, $t1, $zero
    sub  $t3, $t2, $zero
    halt
""")
    base = program.symbols["main"]
    assert sites.moves == frozenset({base + 4, base + 8, base + 12})


def test_alias_chain_exposes_a_move_site():
    """A register that may alias $zero makes a later register-form
    instruction a possible move after the pass rewrites the operand."""
    program, sites = _sites("""
main:
    addi $t3, $zero, 7
    add  $t1, $zero, $zero
    or   $t2, $t3, $t1
    halt
""")
    base = program.symbols["main"]
    # add:   both operands are $zero -> move (and $t1 joins Z).
    # or:    $t1 may alias $zero -> the or may become a move of $t3.
    assert base + 4 in sites.moves
    assert base + 8 in sites.moves


def test_redefinition_kills_the_alias():
    program, sites = _sites("""
main:
    add  $t1, $zero, $zero
    addi $t1, $t1, 5
    or   $t2, $t3, $t1
    halt
""")
    base = program.symbols["main"]
    # After the addi, $t1 no longer aliases $zero: the or is not a
    # possible move.
    assert base + 8 not in sites.moves


def test_reassociable_chain_site():
    program, sites = _sites("""
main:
    addi $t0, $zero, 5
    addi $t1, $t0, 6
    addi $t2, $t3, 7
    halt
""")
    base = program.symbols["main"]
    # Only the second addi consumes live ADDI provenance; the first's
    # rs is $zero and the third's rs has none.
    assert sites.reassoc == frozenset({base + 4})


def test_scaled_add_pair_including_swapped_operand():
    program, sites = _sites("""
main:
    addi $t3, $zero, 9
    sll  $t0, $t3, 2
    add  $t1, $t0, $t3
    add  $t2, $t3, $t0
    halt
""")
    base = program.symbols["main"]
    # Both adds: one consumes the shift through rs, one through rt
    # (R3 is operand-swappable for the scaled-add pass).
    assert sites.scaled == frozenset({base + 8, base + 12})


def test_large_shift_is_not_a_scaled_opportunity():
    program, sites = _sites("""
main:
    addi $t3, $zero, 9
    sll  $t0, $t3, 4
    add  $t1, $t0, $t3
    halt
""")
    assert sites.scaled == frozenset()


def test_max_shift_is_configurable():
    source = """
main:
    addi $t3, $zero, 9
    sll  $t0, $t3, 3
    add  $t1, $t0, $t3
    halt
"""
    _, wide = _sites(source, max_shift=3)
    _, narrow = _sites(source, max_shift=2)
    assert len(wide.scaled) == 1
    assert narrow.scaled == frozenset()


def test_possible_move_sources_idioms():
    assert possible_move_sources(
        Instruction(Op.ADDI, rd=T1, rs=T0, imm=0)) == (T0,)
    assert possible_move_sources(
        Instruction(Op.ANDI, rd=T1, rs=T0, imm=0)) == (0,)
    # Zero destination is a no-op, never a move.
    assert possible_move_sources(
        Instruction(Op.ADDI, rd=0, rs=T0, imm=0)) == ()
    # With $t2 in the may-alias-zero mask, both operands qualify.
    both = possible_move_sources(
        Instruction(Op.ADD, rd=T1, rs=T0, rt=T2), zero_mask=1 << T2)
    assert both == (T0,)
    swapped = possible_move_sources(
        Instruction(Op.ADD, rd=T1, rs=T2, rt=T0), zero_mask=1 << T2)
    assert swapped == (T0,)


def test_sites_counts_and_union():
    _, sites = _sites("""
main:
    addi $t0, $zero, 5
    addi $t1, $t0, 0
    halt
""")
    counts = sites.counts()
    assert counts["any_opt"] == len(sites.any_opt)
    assert sites.any_opt == sites.moves | sites.reassoc | sites.scaled
    assert set(sites.as_sets()) == {"moves", "reassoc", "scaled",
                                    "any_opt"}


def test_block_pressure_counts_dependences():
    cfg = build_cfg(assemble("""
main:
    addi $t0, $zero, 1
    addi $t1, $t0, 2
    add  $t2, $t1, $t0
    halt
"""))
    pressure = block_pressure(cfg.blocks[cfg.entry])
    # addi->addi, addi->add (x2): three intra-block dependence edges.
    assert pressure.dep_edges == 3
    assert pressure.dep_height >= 3
    # All four instructions land in cluster 0 under in-order packing.
    assert pressure.cross_cluster_edges == 0
