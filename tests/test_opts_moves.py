"""Register-move marking pass tests (paper §4.2)."""

from repro.fillunit.opts.base import OptimizationConfig
from tests.helpers import build_segments

MOVES = OptimizationConfig.only("moves")


def segment_for(source, **kw):
    _, _, segments = build_segments(source, MOVES, **kw)
    return segments[0]


def test_canonical_move_marked():
    seg = segment_for("""
    main:
        addi $t1, $t0, 0
        halt
    """)
    assert seg.instrs[0].move_flag


def test_or_and_sll_idioms_marked():
    seg = segment_for("""
    main:
        or   $t1, $t0, $zero
        sll  $t2, $t0, 0
        sub  $t3, $t0, $zero
        halt
    """)
    assert all(instr.move_flag for instr in seg.instrs[:3])


def test_non_moves_not_marked():
    seg = segment_for("""
    main:
        addi $t1, $t0, 4
        add  $t2, $t0, $t1
        halt
    """)
    assert not any(instr.move_flag for instr in seg.instrs)


def test_dependent_rewritten_to_move_source():
    """Consumers of the move read the move's source directly, avoiding
    the rename-read serialization (paper: 'modified ... to be dependent
    upon the source of the move instead')."""
    seg = segment_for("""
    main:
        addi $t0, $zero, 5
        addi $t1, $t0, 0       # move t1 <- t0
        add  $t2, $t1, $t1     # consumer
        halt
    """)
    consumer = seg.instrs[2]
    assert consumer.rs == 8 and consumer.rt == 8    # rewritten to $t0
    assert consumer.move_bypassed


def test_move_chain_collapses_to_ultimate_source():
    seg = segment_for("""
    main:
        addi $t1, $t0, 0
        addi $t2, $t1, 0
        add  $t3, $t2, $zero
        sw   $t2, 0($sp)
        halt
    """)
    # every alias resolves to $t0 (reg 8)
    assert seg.instrs[1].sources() == (8,)
    assert seg.instrs[2].sources() == (8,)
    assert seg.instrs[3].rt == 8


def test_alias_dies_when_source_redefined():
    seg = segment_for("""
    main:
        addi $t1, $t0, 0       # t1 == t0
        addi $t0, $t0, 4       # t0 redefined: alias must die
        add  $t2, $t1, $zero   # must still read t1
        halt
    """)
    consumer = seg.instrs[2]
    assert consumer.rs == 9    # $t1, NOT rewritten to $t0


def test_alias_dies_when_dest_redefined():
    seg = segment_for("""
    main:
        addi $t1, $t0, 0
        addi $t1, $t5, 7       # t1 redefined by a non-move
        add  $t2, $t1, $zero
        halt
    """)
    assert seg.instrs[2].rs == 9   # reads the new t1


def test_branch_operands_rewritten():
    seg = segment_for("""
    main:
        addi $t2, $zero, 7
        addi $t1, $t0, 0
        beq  $t1, $t2, out      # not taken: t1=0, t2=7
    out:
        halt
    """)
    assert seg.instrs[2].rs == 8


def test_jr_source_never_rewritten():
    """Rewriting JR's source would break return classification."""
    seg = segment_for("""
    main:
        jal f
        halt
    f:
        addi $t9, $ra, 0
        jr   $ra
    """, promote_all=True)
    jrs = [i for i in seg.instrs if i.op.value == "jr"]
    assert jrs and all(i.rs == 31 for i in jrs)


def test_move_from_zero_rewrites_to_r0():
    seg = segment_for("""
    main:
        addi $t1, $zero, 0     # t1 = 0
        add  $t2, $t1, $t3
        halt
    """)
    assert seg.instrs[1].rs == 0


def test_stats_counted():
    from repro.fillunit.opts.moves import RegisterMovePass
    from repro.fillunit.opts.base import PassContext
    from repro.tracecache.segment import TraceSegment
    from repro.isa.instruction import Instruction
    from repro.isa.opcodes import Op
    seg = TraceSegment(start_pc=0, instrs=[
        Instruction(Op.ADDI, rd=9, rs=8, imm=0, pc=0),
        Instruction(Op.ADD, rd=10, rs=9, rt=9, pc=4),
    ])
    stats = RegisterMovePass().apply(seg, PassContext())
    assert stats["moves_marked"] == 1
    assert stats["move_operands_rewritten"] == 2


def test_self_move_marked_but_no_alias():
    seg = segment_for("""
    main:
        addi $t0, $t0, 0
        add  $t1, $t0, $zero
        halt
    """)
    assert seg.instrs[0].move_flag
    # consumer of t0 keeps reading t0 (identity alias); the second
    # instruction is itself a move of t0.
    assert seg.instrs[1].sources() == (8,)
