"""Dependency-marking tests."""

from repro.fillunit.dependency import mark_dependencies
from repro.isa.instruction import Instruction, ScaleAnnotation
from repro.isa.opcodes import Op


def test_internal_producer_identified():
    instrs = [Instruction(Op.ADDI, rd=8, rs=9, imm=1),
              Instruction(Op.ADD, rd=10, rs=8, rt=11)]
    info = mark_dependencies(instrs)
    assert info.producer[1] == {8: 0, 11: None}
    assert info.internal_producers(1) == {0}


def test_live_in_counted():
    instrs = [Instruction(Op.ADD, rd=8, rs=9, rt=10)]
    info = mark_dependencies(instrs)
    assert info.livein_counts[0] == 2
    assert info.producer[0] == {9: None, 10: None}


def test_register_zero_never_a_dependence():
    instrs = [Instruction(Op.ADDI, rd=0, rs=1, imm=1),
              Instruction(Op.ADD, rd=8, rs=0, rt=1)]
    info = mark_dependencies(instrs)
    assert 0 not in info.producer[1]
    assert info.livein_counts[1] == 1


def test_latest_definition_wins():
    instrs = [Instruction(Op.ADDI, rd=8, rs=9, imm=1),
              Instruction(Op.ADDI, rd=8, rs=9, imm=2),
              Instruction(Op.ADD, rd=10, rs=8, rt=9)]
    info = mark_dependencies(instrs)
    assert info.producer[2][8] == 1


def test_liveout_marks_final_writers():
    instrs = [Instruction(Op.ADDI, rd=8, rs=9, imm=1),   # overwritten
              Instruction(Op.ADDI, rd=8, rs=9, imm=2),   # final r8
              Instruction(Op.ADDI, rd=10, rs=8, imm=3)]  # final r10
    info = mark_dependencies(instrs)
    assert info.liveout == [False, True, True]


def test_consumers_of():
    instrs = [Instruction(Op.ADDI, rd=8, rs=9, imm=1),
              Instruction(Op.ADD, rd=10, rs=8, rt=8),
              Instruction(Op.SW, rt=8, rs=29, imm=0)]
    info = mark_dependencies(instrs)
    assert info.consumers_of(0) == [1, 2]


def test_annotation_aware_sources():
    """A scaled add depends on the shift's SOURCE, not the shift."""
    instrs = [Instruction(Op.SLL, rd=8, rs=9, imm=2),
              Instruction(Op.ADD, rd=10, rs=8, rt=11,
                          scale=ScaleAnnotation(src=9, shamt=2))]
    info = mark_dependencies(instrs)
    assert 8 not in info.producer[1]
    assert info.producer[1] == {9: None, 11: None}
    assert info.internal_producers(1) == set()


def test_move_flag_collapses_sources():
    instrs = [Instruction(Op.ADDI, rd=8, rs=9, imm=1),
              Instruction(Op.ADDI, rd=10, rs=8, imm=0, move_flag=True)]
    info = mark_dependencies(instrs)
    assert info.producer[1] == {8: 0}


def test_store_value_is_a_source():
    instrs = [Instruction(Op.ADDI, rd=8, rs=0, imm=7),
              Instruction(Op.SWX, rd=8, rs=29, rt=30)]
    info = mark_dependencies(instrs)
    assert info.producer[1][8] == 0


def test_branch_sources_tracked():
    instrs = [Instruction(Op.SLT, rd=1, rs=8, rt=9),
              Instruction(Op.BNE, rs=1, rt=0, imm=-4)]
    info = mark_dependencies(instrs)
    assert info.producer[1] == {1: 0}


def test_empty_segment():
    info = mark_dependencies([])
    assert info.producer == [] and info.liveout == []
