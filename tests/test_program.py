"""Program image and loader tests."""

import pytest

from repro.asm import assemble
from repro.errors import ExecutionError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.machine import ArchState, Memory
from repro.program import Program, load_program
from repro.program.loader import STACK_TOP


def test_post_init_assigns_pcs():
    prog = Program([Instruction(Op.NOP), Instruction(Op.HALT)],
                   text_base=0x2000)
    assert [i.pc for i in prog.instructions] == [0x2000, 0x2004]
    assert prog.text_end == 0x2008


def test_entry_defaults_to_main_symbol():
    prog = Program([Instruction(Op.NOP)], symbols={"main": 0x1000})
    assert prog.entry == 0x1000
    prog2 = Program([Instruction(Op.NOP)], text_base=0x3000)
    assert prog2.entry == 0x3000


def test_instr_at_bounds():
    prog = Program([Instruction(Op.NOP)])
    assert prog.instr_at(prog.text_base).op is Op.NOP
    with pytest.raises(ExecutionError):
        prog.instr_at(prog.text_base + 4)
    with pytest.raises(ExecutionError):
        prog.instr_at(prog.text_base - 4)
    with pytest.raises(ExecutionError):
        prog.instr_at(prog.text_base + 2)   # misaligned


def test_contains_pc():
    prog = Program([Instruction(Op.NOP), Instruction(Op.NOP)])
    assert prog.contains_pc(prog.text_base)
    assert prog.contains_pc(prog.text_base + 4)
    assert not prog.contains_pc(prog.text_base + 8)
    assert not prog.contains_pc(prog.text_base + 1)


def test_symbol_lookup():
    prog = assemble(".data\nv: .word 9\n.text\nmain: halt\n")
    assert prog.symbol("v") == prog.data_base
    with pytest.raises(KeyError):
        prog.symbol("nope")


def test_loader_copies_data_and_sets_registers():
    prog = assemble(".data\nv: .word 0x1234\n.text\nmain: halt\n")
    memory, state = Memory(), ArchState()
    load_program(prog, memory, state)
    assert memory.load_word(prog.data_base) == 0x1234
    assert state.pc == prog.entry
    assert state.read_reg(29) == STACK_TOP
    assert state.read_reg(28) == prog.data_base


def test_loader_without_state():
    prog = assemble(".data\nv: .word 7\n.text\nmain: halt\n")
    memory = Memory()
    load_program(prog, memory)
    assert memory.load_word(prog.data_base) == 7


def test_len():
    assert len(Program([Instruction(Op.NOP)] * 3)) == 3
