"""Assembler tests: sections, labels, fixups, errors."""

import pytest

from repro.asm import assemble
from repro.errors import AssemblerError
from repro.isa.opcodes import Op


def test_minimal_program():
    prog = assemble(".text\nmain:\n    halt\n")
    assert len(prog) == 1
    assert prog.instructions[0].op is Op.HALT
    assert prog.entry == prog.symbols["main"] == prog.text_base


def test_text_is_default_section():
    prog = assemble("nop\nhalt\n")
    assert len(prog) == 2


def test_branch_backward_displacement():
    prog = assemble("""
        .text
    loop:
        addi $t0, $t0, 1
        bne  $t0, $zero, loop
        halt
    """)
    branch = prog.instructions[1]
    # branch at text_base+4 targeting text_base: displacement -4
    assert branch.imm == -4


def test_branch_forward_displacement():
    prog = assemble("""
        beq $t0, $zero, done
        nop
    done:
        halt
    """)
    assert prog.instructions[0].imm == 8


def test_jump_target_absolute():
    prog = assemble("""
    main:
        j end
        nop
    end:
        halt
    """)
    assert prog.instructions[0].imm == prog.symbols["end"]


def test_data_words_and_symbols():
    prog = assemble("""
        .data
    arr: .word 1, 2, 3
    tail: .word 99
        .text
        halt
    """)
    assert prog.symbols["arr"] == prog.data_base
    assert prog.symbols["tail"] == prog.data_base + 12
    assert prog.data[:4] == (1).to_bytes(4, "little")


def test_data_word_symbol_initializer():
    prog = assemble("""
        .data
    a: .word b
    b: .word a+4
        .text
        halt
    """)
    a_addr, b_addr = prog.symbols["a"], prog.symbols["b"]
    assert int.from_bytes(prog.data[0:4], "little") == b_addr
    assert int.from_bytes(prog.data[4:8], "little") == a_addr + 4


def test_half_byte_space_align():
    prog = assemble("""
        .data
    h: .half 1, 2
    b: .byte 3
        .align 4
    w: .word 7
        .text
        halt
    """)
    assert prog.symbols["h"] == prog.data_base
    assert prog.symbols["b"] == prog.data_base + 4
    assert prog.symbols["w"] % 4 == 0
    assert prog.data[prog.symbols["w"] - prog.data_base] == 7


def test_space_reserves_zeroed_bytes():
    prog = assemble(".data\nbuf: .space 16\n.text\nhalt\n")
    assert prog.data[:16] == bytes(16)


def test_equ_constants():
    prog = assemble("""
        .equ SIZE, 12
        li $t0, SIZE
        addi $t1, $t0, SIZE
        halt
    """)
    assert prog.instructions[0].imm == 12
    assert prog.instructions[1].imm == 12


def test_la_loads_symbol_address():
    prog = assemble("""
        .data
    arr: .word 5
        .text
        la $t0, arr
        halt
    """)
    # la expands to lui+addi; run it to check the loaded address.
    from repro.machine import Executor
    ex = Executor(prog)
    ex.step()  # lui
    ex.step()  # addi
    assert ex.state.read_reg(8) == prog.symbols["arr"]


def test_memory_operand_with_symbol_displacement():
    # The default data base does not fit a 16-bit displacement, so use
    # a low one — absolute-addressed globals are a small-model idiom.
    prog = assemble("""
        .data
    v: .word 1
        .text
        lw $t0, v($zero)
        halt
    """, data_base=0x2000)
    assert prog.instructions[0].imm == prog.symbols["v"] == 0x2000


def test_symbol_displacement_out_of_range_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\nv: .word 1\n.text\nlw $t0, v($zero)\nhalt\n")


def test_pc_assignment_sequential():
    prog = assemble("nop\nnop\nnop\nhalt\n")
    pcs = [instr.pc for instr in prog.instructions]
    assert pcs == [prog.text_base + 4 * i for i in range(4)]


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\n nop\na:\n halt\n")


def test_undefined_symbol_rejected():
    with pytest.raises(AssemblerError) as err:
        assemble("j nowhere\n")
    assert "nowhere" in str(err.value)


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("fnord $t0\n")


def test_unknown_directive_rejected():
    with pytest.raises(AssemblerError):
        assemble(".bogus 3\n")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("add $t0, $t1\n")


def test_bad_register_rejected():
    with pytest.raises(AssemblerError):
        assemble("add $t0, $t1, $q9\n")


def test_immediate_out_of_range_rejected():
    with pytest.raises(AssemblerError):
        assemble(".equ BIG, 70000\naddi $t0, $t1, BIG\nhalt\n")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\nadd $t0, $t1, $t2\n")


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as err:
        assemble("nop\nnop\nbadop $t0\n")
    assert err.value.line == 3
    assert "line 3" in str(err.value)


def test_custom_section_bases():
    prog = assemble("halt\n", text_base=0x8000, data_base=0x200000)
    assert prog.text_base == 0x8000
    assert prog.instructions[0].pc == 0x8000


def test_jalr_one_operand_defaults_link_to_ra():
    prog = assemble("jalr $t0\nhalt\n")
    assert prog.instructions[0].rd == 31


def test_encoded_text_round_trips():
    from repro.isa.encoding import decode
    prog = assemble("""
        .data
    arr: .word 1, 2
        .text
    main:
        la   $s0, arr
        li   $t0, 2
    loop:
        lw   $t1, 0($s0)
        addi $s0, $s0, 4
        addi $t0, $t0, -1
        bgtz $t0, loop
        halt
    """)
    for instr, word in zip(prog.instructions, prog.encoded_text()):
        decoded = decode(word)
        assert decoded.op is instr.op
        assert decoded.imm == instr.imm


def test_listing_contains_addresses():
    prog = assemble("nop\nhalt\n")
    listing = prog.listing()
    assert f"{prog.text_base:08x}" in listing
    assert "halt" in listing
