"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SimConfig


@pytest.fixture
def tiny_config():
    return SimConfig.tiny()


@pytest.fixture
def paper_config():
    return SimConfig.paper()
