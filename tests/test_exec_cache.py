"""The content-addressed on-disk result cache."""

from __future__ import annotations

import json

from repro.core.results import OptCoverage, SimResult
from repro.exec.cache import ResultCache

FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


def _result(cycles: int = 100) -> SimResult:
    return SimResult(benchmark="compress", config_label="baseline",
                     instructions=250, cycles=cycles,
                     coverage=OptCoverage(),
                     telemetry={"fetch.tc.instrs": 200})


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    stored = _result()
    cache.put(FP, stored, provenance={"benchmark": "compress"})
    loaded = cache.get(FP)
    assert loaded == stored
    assert loaded.telemetry == {"fetch.tc.instrs": 200}
    assert cache.hits == 1 and cache.misses == 0


def test_sharded_layout_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(FP, _result())
    assert path == tmp_path / FP[:2] / f"{FP}.json"
    cache.put(FP2, _result(200))
    assert len(cache) == 2
    assert FP in cache and FP2 in cache
    assert "ee" + "2" * 62 not in cache


def test_missing_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get(FP) is None
    assert cache.misses == 1


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(FP, _result())
    path.write_text("{ not json")
    assert cache.get(FP) is None
    assert not path.exists()
    # the slot can be refilled and read again
    cache.put(FP, _result(300))
    assert cache.get(FP).cycles == 300


def test_stale_envelope_version_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.put(FP, _result())
    envelope = json.loads(path.read_text())
    envelope["envelope"] = 999
    path.write_text(json.dumps(envelope))
    assert cache.get(FP) is None
    assert not path.exists()


def test_overwrite_is_atomic_last_writer_wins(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(FP, _result(100))
    cache.put(FP, _result(150))
    assert cache.get(FP).cycles == 150
    leftovers = list(tmp_path.rglob("*.tmp"))
    assert leftovers == []
