"""Value-flow propagation, widening, the store→load channel, and the
refined supergraph's edge-soundness property."""

from repro import workloads
from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.interproc import interprocedural_analysis
from repro.analysis.static.opportunities import find_opportunities
from repro.analysis.static.valueflow import (
    TOP,
    AbstractValue,
    const,
    definitely_not_equal,
    join_values,
    solve_valueflow,
    value_range,
)
from repro.asm import assemble
from repro.machine.executor import Executor

T0, T1, T2, RA = 8, 9, 10, 31


def _vf(src):
    cfg = build_cfg(assemble(src))
    return cfg, solve_valueflow(cfg, cfg.program)


# -- the abstract domain -------------------------------------------------

def test_const_sets_join_and_widen():
    a = const(1, 2)
    b = const(3)
    joined = join_values(a, b)
    assert joined.values == frozenset({1, 2, 3})
    wide = join_values(const(*range(8)), const(100))
    assert not wide.is_const          # 9 members: widened to a range
    assert wide.min() <= 0 and wide.max() >= 100


def test_range_bounds_snap_to_the_ladder():
    v = value_range(3, 100)
    assert v.lo <= 3 and v.hi >= 100
    assert v.hi in (127, 128)         # snapped outward onto 2^k ± 1


def test_definitely_not_equal():
    assert definitely_not_equal(const(1), const(2))
    assert not definitely_not_equal(const(1), const(1, 2))
    assert not definitely_not_equal(const(1), TOP)
    assert definitely_not_equal(value_range(0, 4), const(1000))


def test_top_absorbs():
    assert join_values(TOP, const(1)) is TOP
    assert isinstance(join_values(const(5), TOP), AbstractValue)


# -- straight-line propagation ------------------------------------------

def test_constants_propagate_through_alu():
    cfg, vf = _vf("""
main:
    li   $t0, 10
    addi $t1, $t0, 5
    add  $t2, $t1, $t0
    halt
""")
    add = next(i for i in cfg.program.instructions
               if i.op.value == "add")
    assert vf.dest_value(add).singleton() == 25


def test_store_load_channel_carries_constants():
    cfg, vf = _vf("""
main:
    li   $t0, 42
    addi $sp, $sp, -4
    sw   $t0, 0($sp)
    li   $t0, 0
    lw   $t1, 0($sp)
    halt
""")
    lw = next(i for i in cfg.program.instructions
              if i.op.value == "lw")
    assert vf.dest_value(lw).singleton() == 42


def test_unknown_address_store_havocs_memory():
    cfg, vf = _vf("""
main:
    li   $t3, 42
    sw   $t3, 0($sp)
    li   $t0, 0
    li   $t1, 64
loop:
    sw   $t3, 0($t0)
    addi $t0, $t0, 4
    bne  $t0, $t1, loop
    lw   $t1, 0($sp)
    halt
""")
    loads = [i for i in cfg.program.instructions
             if i.op.value == "lw"]
    # the loop stores through a widened (non-singleton) pointer: after
    # that, the stack slot's contents cannot be trusted.
    assert vf.dest_value(loads[-1]).is_top


def test_widening_terminates_on_counting_loop():
    # a loop whose counter takes unboundedly many distinct values must
    # still reach a fixed point through the range ladder.
    cfg, vf = _vf("""
main:
    li   $t0, 0
    li   $t1, 1000000
loop:
    addi $t0, $t0, 1
    bne  $t0, $t1, loop
    halt
""")
    addi = next(i for i in cfg.program.instructions
                if i.op.value == "addi"
                and i.rd == T0 and i.rs == T0 and i.imm == 1)
    value = vf.dest_value(addi)
    assert value is not None          # solved, i.e. terminated
    state = vf.state_before(addi.pc)
    assert state is not None
    counter = state.reg(T0)
    assert counter.singleton() is None  # genuinely many values


# -- branch decisions and refinement ------------------------------------

def test_decided_branch_prunes_the_dead_arm():
    program = assemble("""
main:
    li   $t0, 1
    beq  $t0, $zero, dead
    li   $v0, 10
    syscall
    halt
dead:
    addi $t2, $t2, 1
    halt
""")
    ia = interprocedural_analysis(program)
    beq = next(i for i in program.instructions if i.op.value == "beq")
    assert ia.decided_branches.get(beq.pc) is False
    dead_pc = program.symbols["dead"]
    assert ia.valueflow.state_before(dead_pc) is None


def test_return_edges_resolve_to_the_real_caller():
    program = assemble("""
main:
    jal  helper
    li   $v0, 10
    syscall
    halt
helper:
    addi $t0, $t0, 1
    jr   $ra
""")
    ia = interprocedural_analysis(program)
    jr = next(i for i in program.instructions if i.op.value == "jr")
    # $ra provably holds the single link value: the return edge is
    # exact.
    assert ia.resolved_jumps.get(jr.pc) == (program.symbols["main"] + 4,)


def test_refined_sites_never_looser():
    for name in ("compress", "li", "perl"):
        program = workloads.build(name, 0.2)
        intra = find_opportunities(build_cfg(program))
        ia = interprocedural_analysis(program)
        assert ia.sites.moves <= intra.moves, name
        assert ia.sites.reassoc <= intra.reassoc, name
        assert ia.sites.scaled <= intra.scaled, name


def test_at_least_one_workload_strictly_tighter():
    tighter = []
    for name in ("compress", "li"):
        program = workloads.build(name, 0.2)
        intra = find_opportunities(build_cfg(program))
        ia = interprocedural_analysis(program)
        if ia.sites.counts()["any_opt"] < intra.counts()["any_opt"]:
            tighter.append(name)
    assert tighter


def test_refined_graph_still_covers_every_executed_edge():
    # The soundness property test, against the *refined* supergraph:
    # value-flow edge pruning must never drop a transition the
    # functional machine actually takes.
    for name in workloads.names():
        program = workloads.build(name, 0.2)
        ia = interprocedural_analysis(program)
        trace = Executor(program).run()
        missing = [(pc, nxt) for pc, nxt in sorted(trace.executed_edges())
                   if not ia.cfg.has_flow(pc, nxt)]
        assert missing == [], (
            f"{name}: executed transitions pruned from the refined "
            "graph: "
            + ", ".join(f"{pc:#x}->{nxt:#x}" for pc, nxt in missing[:5]))
