"""Reassociation pass tests (paper §4.3)."""

from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.opcodes import Op
from tests.helpers import build_segments

REASSOC = OptimizationConfig.only("reassoc")


def segment_for(source, opts=REASSOC, **kw):
    _, _, segments = build_segments(source, opts, **kw)
    return segments[0]


def test_cross_block_pair_combined():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        beq  $zero, $t9, next     # control-flow boundary
    next:
        addi $t1, $t0, 4
        halt
    """)
    rewritten = seg.instrs[2]
    assert rewritten.reassociated
    assert rewritten.rs == 16      # $s0
    assert rewritten.imm == 8


def test_same_block_pair_inhibited_by_default():
    """The compiler already reassociates within blocks; the fill unit
    only acts across control-flow boundaries (paper §4.3)."""
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        addi $t1, $t0, 4
        halt
    """)
    assert not seg.instrs[1].reassociated
    assert seg.instrs[1].rs == 8


def test_same_block_allowed_when_unrestricted():
    opts = OptimizationConfig(reassoc=True, reassoc_cross_flow_only=False)
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        addi $t1, $t0, 4
        halt
    """, opts=opts)
    assert seg.instrs[1].reassociated
    assert seg.instrs[1].imm == 8


def test_unconditional_jump_is_a_boundary():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        j next
    next:
        addi $t1, $t0, 12
        halt
    """)
    assert seg.instrs[2].reassociated
    assert seg.instrs[2].imm == 16


def test_call_boundary_reassociates():
    """Segments cross procedure boundaries, so caller-side address
    setup combines with callee-side field offsets."""
    seg = segment_for("""
    main:
        addi $a0, $s0, 8
        jal f
        halt
    f:
        addi $t0, $a0, 4
        jr $ra
    """)
    callee_addi = [i for i in seg.instrs if i.op is Op.ADDI and i.rd == 8]
    assert callee_addi and callee_addi[0].reassociated
    assert callee_addi[0].rs == 16 and callee_addi[0].imm == 12


def test_chain_collapses_transitively():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        beq  $zero, $t9, a
    a:
        addi $t1, $t0, 4
        beq  $zero, $t9, b
    b:
        addi $t2, $t1, 4
        halt
    """)
    last = [i for i in seg.instrs if i.rd == 10][0]
    assert last.reassociated
    assert last.rs == 16 and last.imm == 12


def test_base_redefinition_invalidates():
    seg = segment_for("""
    main:
        addi $t0, $s0, 4
        beq  $zero, $t9, next
    next:
        addi $s0, $s0, 100     # base changes!
        addi $t1, $t0, 4       # must NOT become s0+8
        halt
    """)
    target = [i for i in seg.instrs if i.rd == 9][0]
    assert not target.reassociated
    assert target.rs == 8


def test_self_update_establishes_no_provenance():
    seg = segment_for("""
    main:
        addi $t0, $t0, 4       # rs == rd: old value unreachable
        beq  $zero, $t9, next
    next:
        addi $t1, $t0, 4
        halt
    """)
    target = [i for i in seg.instrs if i.rd == 9][0]
    assert not target.reassociated


def test_immediate_overflow_blocks_rewrite():
    seg = segment_for("""
    main:
        addi $t0, $s0, 32000
        beq  $zero, $t9, next
    next:
        addi $t1, $t0, 32000   # 64000 does not fit in 16 bits
        halt
    """)
    target = [i for i in seg.instrs if i.rd == 9][0]
    assert not target.reassociated
    assert target.rs == 8 and target.imm == 32000


def test_negative_immediates_combine():
    seg = segment_for("""
    main:
        addi $t0, $s0, -8
        beq  $zero, $t9, next
    next:
        addi $t1, $t0, 4
        halt
    """)
    target = [i for i in seg.instrs if i.rd == 9][0]
    assert target.reassociated and target.imm == -4


def test_marked_moves_not_treated_as_addi():
    opts = OptimizationConfig(moves=True, reassoc=True)
    seg = segment_for("""
    main:
        addi $t0, $s0, 0       # a move (marked by the earlier pass)
        beq  $zero, $t9, next
    next:
        addi $t1, $t0, 4
        halt
    """, opts=opts)
    target = [i for i in seg.instrs if i.rd == 9][0]
    # move pass already rewrote the source to $s0; reassociation
    # must not double-apply (it skips marked moves).
    assert target.rs == 16
    assert target.imm == 4
