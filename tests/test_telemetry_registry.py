"""Telemetry registry tests: scoped metrics, the disabled fast path,
and snapshot determinism."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    TelemetryRegistry,
)


def test_counter_scoping_and_get_or_create():
    registry = TelemetryRegistry()
    counter = registry.counter("fetch.tc.hits")
    counter.add()
    counter.add(4)
    assert registry.counter("fetch.tc.hits") is counter
    assert registry.value("fetch.tc.hits") == 5
    assert registry.value("never.registered") == 0
    assert "fetch.tc.hits" in registry
    assert len(registry) == 1


def test_gauge_last_write_wins():
    registry = TelemetryRegistry()
    gauge = registry.gauge("fetch.tc.resident_segments")
    gauge.set(10)
    gauge.set(7)
    assert registry.value("fetch.tc.resident_segments") == 7


def test_histogram_summary_and_buckets():
    registry = TelemetryRegistry()
    hist = registry.histogram("fetch.group.size")
    for value in (0, 1, 3, 8, 16):
        hist.observe(value)
    snap = registry.value("fetch.group.size")
    assert snap["count"] == 5
    assert snap["total"] == 28
    assert snap["min"] == 0 and snap["max"] == 16
    assert snap["mean"] == pytest.approx(5.6)
    # power-of-two buckets keyed by bit_length
    assert snap["buckets"] == {"0": 1, "1": 1, "2": 1, "4": 1, "5": 1}


def test_scope_validation():
    registry = TelemetryRegistry()
    with pytest.raises(ConfigError):
        registry.counter("Fetch.TC.Hits")
    with pytest.raises(ConfigError):
        registry.counter("fetch..hits")
    with pytest.raises(ConfigError):
        registry.counter("")


def test_kind_conflict_raises():
    registry = TelemetryRegistry()
    registry.counter("fetch.tc.hits")
    with pytest.raises(ConfigError):
        registry.gauge("fetch.tc.hits")
    with pytest.raises(ConfigError):
        registry.histogram("fetch.tc.hits")


def test_disabled_registry_is_noop():
    registry = TelemetryRegistry(enabled=False)
    counter = registry.counter("fetch.tc.hits")
    assert counter is NULL_METRIC
    counter.add(100)
    registry.gauge("g").set(5)
    registry.histogram("h").observe(3)
    assert counter.value == 0
    assert len(registry) == 0
    assert registry.flat() == {}
    assert registry.snapshot() == {}
    # the shared process-wide instance behaves the same
    assert NULL_REGISTRY.counter("x.y") is NULL_METRIC


def _populate(registry):
    registry.counter("fetch.tc.hits").add(3)
    registry.counter("fetch.tc.lookups").add(4)
    registry.counter("backend.bypass.cross_cluster").add(2)
    registry.gauge("fetch.tc.resident_segments").set(9)
    hist = registry.histogram("fillunit.segment.length")
    for v in (4, 9, 16):
        hist.observe(v)


def test_snapshot_determinism():
    a, b = TelemetryRegistry(), TelemetryRegistry()
    _populate(a)
    _populate(b)
    assert a.flat() == b.flat()
    assert a.snapshot() == b.snapshot()
    # sorted scope order, independent of registration order
    assert list(a.flat()) == sorted(a.flat())


def test_nested_snapshot_structure():
    registry = TelemetryRegistry()
    _populate(registry)
    tree = registry.snapshot()
    assert tree["fetch"]["tc"]["hits"] == 3
    assert tree["fetch"]["tc"]["lookups"] == 4
    assert tree["backend"]["bypass"]["cross_cluster"] == 2
    assert tree["fillunit"]["segment"]["length"]["count"] == 3


def test_real_run_snapshot_is_deterministic():
    from repro.core.config import SimConfig
    from repro.core.pipeline import PipelineModel
    from tests.helpers import run_asm

    source = """
    main:
        li   $t9, 40
    loop:
        addi $t0, $t0, 1
        sll  $t1, $t0, 2
        add  $t2, $t1, $t0
        blt  $t0, $t9, loop
        halt
    """
    _, trace = run_asm(source)
    results = []
    for _ in range(2):
        model = PipelineModel(SimConfig.tiny())
        results.append(model.run(trace, "t", "r"))
    assert results[0].telemetry == results[1].telemetry
    assert results[0].telemetry  # non-empty even without a session
    # SimResult counters are derived from the registry (single source
    # of truth).
    r = results[0]
    assert r.telemetry["fetch.tc.instrs"] == r.tc_fetched_instrs
    assert r.telemetry["fetch.ic.instrs"] == r.ic_fetched_instrs
    assert r.telemetry["branch.cond.mispredicts"] == r.mispredicts
    assert r.telemetry["rename.moves.eliminated"] == r.moves_eliminated
