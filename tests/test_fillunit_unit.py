"""Fill unit orchestration tests."""

from repro.branch.bias import BiasTable
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.tracecache.cache import TraceCache, TraceCacheConfig
from tests.helpers import run_asm

LOOP = """
main:
    li   $t9, 30
loop:
    sll  $t1, $t0, 2
    addi $t0, $t0, 1
    blt  $t0, $t9, loop
    halt
"""


def make_unit(opts=None, latency=5):
    tc = TraceCache(TraceCacheConfig(num_sets=32, assoc=4))
    unit = FillUnit(FillUnitConfig(
        latency=latency,
        optimizations=opts or OptimizationConfig.none()),
        tc, BiasTable(64, threshold=8))
    return unit, tc


def feed(unit, trace):
    for cycle, record in enumerate(trace):
        if record.instr.is_cond_branch():
            unit.bias.record(record.pc, record.taken)
        unit.retire(record, cycle)


def test_segments_installed_with_latency():
    unit, tc = make_unit(latency=7)
    _, trace = run_asm(LOOP)
    feed(unit, trace)
    assert unit.stats.segments_built > 0
    assert tc.stats.fills == unit.stats.segments_built
    seg = tc.probe(trace[0].pc)
    assert seg is not None
    # fill_cycle = retirement cycle of the finalizing instr + latency


def test_identical_segments_deduped():
    """A hot loop rebuilds the same segment over and over; the fill
    unit recognizes it and refreshes the line instead of re-optimizing."""
    unit, tc = make_unit()
    _, trace = run_asm(LOOP)
    feed(unit, trace)
    assert unit.stats.segments_deduped > 0
    assert tc.stats.refreshes == unit.stats.segments_deduped


def test_pass_totals_accumulate():
    unit, _ = make_unit(OptimizationConfig.all())
    _, trace = run_asm("""
    main:
        addi $t1, $t0, 0
        sll  $t2, $t0, 2
        add  $t3, $t2, $t0
        halt
    """)
    feed(unit, trace)
    totals = unit.pass_totals
    assert totals["moves_marked"] >= 1
    assert totals["scaled_adds"] >= 1
    assert "placed_instructions" in totals


def test_built_segments_are_valid():
    unit, tc = make_unit(OptimizationConfig.all())
    _, trace = run_asm(LOOP)
    feed(unit, trace)
    for entries in tc._sets:
        for seg in entries.values():
            seg.validate()
            assert seg.deps is not None


def test_instructions_collected_counter():
    unit, _ = make_unit()
    _, trace = run_asm(LOOP)
    feed(unit, trace)
    assert unit.stats.instructions_collected == len(trace)


def test_note_fetch_miss_propagates_to_collector():
    unit, _ = make_unit()
    unit.note_fetch_miss(0x1234)
    assert 0x1234 in unit.collector._miss_points


def test_baseline_unit_keeps_annotations_clean():
    unit, tc = make_unit(OptimizationConfig.none())
    _, trace = run_asm("""
    main:
        addi $t1, $t0, 0
        sll  $t2, $t0, 2
        add  $t3, $t2, $t0
        halt
    """)
    feed(unit, trace)
    for entries in tc._sets:
        for seg in entries.values():
            assert not any(i.move_flag or i.scale or i.reassociated
                           for i in seg.instrs)
            assert seg.slots == list(range(len(seg)))
