"""Trace segment and trace cache tests."""

import pytest

from repro.errors import ConfigError, SegmentError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.tracecache.cache import TraceCache, TraceCacheConfig
from repro.tracecache.segment import BranchInfo, TraceSegment


def make_segment(start_pc=0x1000, length=4, branch_at=None,
                 promoted=False, direction=True, terminator=None):
    instrs = []
    branches = []
    for idx in range(length):
        pc = start_pc + 4 * idx
        if branch_at is not None and idx in branch_at:
            instr = Instruction(Op.BEQ, rs=1, rt=2, imm=8, pc=pc)
            branches.append(BranchInfo(idx, pc, direction, promoted))
        elif terminator is not None and idx == length - 1:
            instr = Instruction(terminator, rs=31, pc=pc)
        else:
            instr = Instruction(Op.ADDI, rd=3, rs=3, imm=1, pc=pc)
        instrs.append(instr)
    return TraceSegment(start_pc=start_pc, instrs=instrs, branches=branches)


# --- segment invariants ---------------------------------------------------

def test_valid_segment_passes():
    make_segment().validate()


def test_empty_segment_rejected():
    seg = TraceSegment(start_pc=0x1000, instrs=[])
    with pytest.raises(SegmentError):
        seg.validate()


def test_oversized_segment_rejected():
    seg = make_segment(length=17)
    with pytest.raises(SegmentError):
        seg.validate(max_instrs=16)


def test_too_many_unpromoted_branches_rejected():
    seg = make_segment(length=8, branch_at={1, 3, 5, 7})
    with pytest.raises(SegmentError):
        seg.validate(max_cond_branches=3)


def test_promoted_branches_do_not_count():
    """Promotion frees predictor slots: the 3-branch limit applies to
    unpromoted conditional branches only (paper §3)."""
    seg = make_segment(length=8, branch_at={1, 3, 5, 7}, promoted=True)
    seg.validate(max_cond_branches=3)
    assert seg.unpromoted_branch_count == 0


def test_terminator_must_be_last():
    instrs = [Instruction(Op.JR, rs=31, pc=0x1000),
              Instruction(Op.NOP, pc=0x1004)]
    seg = TraceSegment(start_pc=0x1000, instrs=instrs)
    with pytest.raises(SegmentError):
        seg.validate()


def test_terminator_as_last_is_fine():
    make_segment(length=4, terminator=Op.JR).validate()


def test_start_pc_mismatch_rejected():
    seg = make_segment()
    seg.start_pc = 0x2000
    with pytest.raises(SegmentError):
        seg.validate()


def test_slot_permutation_enforced():
    seg = make_segment(length=4)
    seg.slots = [0, 0, 1, 2]
    with pytest.raises(SegmentError):
        seg.validate()


def test_branch_record_consistency_enforced():
    seg = make_segment(length=4)
    seg.branches = [BranchInfo(0, 0x1000, True, False)]  # not a branch
    with pytest.raises(SegmentError):
        seg.validate()


def test_default_slots_identity():
    seg = make_segment(length=5)
    assert seg.slots == [0, 1, 2, 3, 4]


def test_path_key_is_pc_sequence():
    seg = make_segment(length=3)
    assert seg.path_key == (0x1000, 0x1004, 0x1008)


def test_optimized_counts():
    seg = make_segment(length=4)
    seg.instrs[0].move_flag = True
    seg.instrs[1].reassociated = True
    counts = seg.optimized_counts()
    assert counts == {"moves": 1, "reassoc": 1, "scaled": 0, "any": 2}


def test_listing_mentions_slots():
    seg = make_segment(length=2)
    assert "slot=" in seg.listing()


# --- trace cache -----------------------------------------------------------

def make_tc(num_sets=16, assoc=2):
    return TraceCache(TraceCacheConfig(num_sets=num_sets, assoc=assoc))


def test_config_validation():
    with pytest.raises(ConfigError):
        TraceCacheConfig(num_sets=15)
    with pytest.raises(ConfigError):
        TraceCacheConfig(assoc=0)
    assert TraceCacheConfig().num_lines == 2048


def test_lookup_miss_then_hit():
    tc = make_tc()
    assert tc.lookup(0x1000, now=0) is None
    tc.insert(make_segment(0x1000), now=0)
    assert tc.lookup(0x1000, now=1) is not None
    assert tc.stats.lookups == 2 and tc.stats.hits == 1


def test_fill_latency_delays_visibility():
    """A segment filled at cycle 10 with 5-cycle fill latency is not
    visible until cycle 15 — the mechanism behind Figure 8."""
    tc = make_tc()
    tc.insert(make_segment(0x1000), now=10, fill_latency=5)
    assert tc.lookup(0x1000, now=14) is None
    assert tc.lookup(0x1000, now=15) is not None


def test_same_path_insert_replaces_content():
    """Re-inserting the same path replaces the line with fresh content
    and a fresh fill time (content may differ, e.g. promotion state);
    dedup of *identical* rebuilds is the fill unit's job, via touch()."""
    tc = make_tc()
    tc.insert(make_segment(0x1000), now=0)
    tc.insert(make_segment(0x1000), now=100, fill_latency=50)
    assert tc.stats.fills == 2
    assert tc.lookup(0x1000, now=1) is None       # re-fill in flight
    assert tc.lookup(0x1000, now=150) is not None
    assert tc.resident_segments() == 1


def test_path_associativity_keeps_both_paths():
    tc = make_tc()
    taken = make_segment(0x1000, branch_at={1}, direction=True)
    fallthrough = make_segment(0x1000, branch_at={1}, direction=False)
    fallthrough.instrs[2].pc = 0x1100    # different continuation
    fallthrough_key = fallthrough.path_key
    tc.insert(taken, now=0)
    tc.insert(fallthrough, now=0)
    assert tc.stats.fills == 2
    assert tc.probe(0x1000, taken.path_key) is not None
    assert tc.probe(0x1000, fallthrough_key) is not None


def test_chooser_selects_agreeing_path():
    tc = make_tc()
    taken = make_segment(0x1000, branch_at={1}, direction=True)
    fallthrough = make_segment(0x1000, branch_at={1}, direction=False)
    fallthrough.instrs[2].pc = 0x1100
    tc.insert(taken, now=0)
    tc.insert(fallthrough, now=0)
    picked = tc.lookup(0x1000, now=1,
                       chooser=lambda seg: seg.branches[0].direction)
    assert picked.branches[0].direction is True
    picked = tc.lookup(0x1000, now=1,
                       chooser=lambda seg: not seg.branches[0].direction)
    assert picked.branches[0].direction is False


def test_lru_eviction_within_set():
    tc = make_tc(num_sets=1, assoc=2)
    tc.insert(make_segment(0x1000), now=0)
    tc.insert(make_segment(0x2000), now=0)
    tc.lookup(0x1000, now=1)                 # refresh 0x1000
    tc.insert(make_segment(0x3000), now=0)   # evicts 0x2000
    assert tc.probe(0x1000) is not None
    assert tc.probe(0x2000) is None
    assert tc.probe(0x3000) is not None


def test_probe_without_path_key_returns_mru_match():
    """``probe(pc)`` must agree with ``lookup``'s tie-break: among
    resident segments starting at *pc*, the most recently used wins —
    not the oldest-inserted one."""
    tc = make_tc()
    taken = make_segment(0x1000, branch_at={1}, direction=True)
    fallthrough = make_segment(0x1000, branch_at={1}, direction=False)
    fallthrough.instrs[2].pc = 0x1100
    tc.insert(taken, now=0)
    tc.insert(fallthrough, now=0)
    # fallthrough was installed last, hence is MRU.
    assert tc.probe(0x1000) is tc.probe(0x1000, fallthrough.path_key)
    # Touching the taken path makes it MRU; probe must follow.
    tc.touch(0x1000, taken.path_key)
    assert tc.probe(0x1000) is tc.probe(0x1000, taken.path_key)
    # lookup's equal-score tie-break agrees with probe's answer.
    assert tc.lookup(0x1000, now=1, chooser=lambda seg: 1) \
        is tc.probe(0x1000, taken.path_key)


def test_invalidate_drops_all_paths():
    tc = make_tc()
    a = make_segment(0x1000, branch_at={1}, direction=True)
    b = make_segment(0x1000, branch_at={1}, direction=False)
    b.instrs[2].pc = 0x1100
    tc.insert(a, now=0)
    tc.insert(b, now=0)
    assert tc.invalidate(0x1000) == 2
    assert tc.lookup(0x1000, now=1) is None


def test_insert_validates_segment():
    tc = make_tc()
    bad = make_segment(length=17)
    with pytest.raises(SegmentError):
        tc.insert(bad, now=0)


def test_touch_refreshes_lru():
    tc = make_tc(num_sets=1, assoc=2)
    seg_a = make_segment(0x1000)
    tc.insert(seg_a, now=0)
    tc.insert(make_segment(0x2000), now=0)
    tc.touch(0x1000, seg_a.path_key)
    tc.insert(make_segment(0x3000), now=0)
    assert tc.probe(0x1000) is not None
    assert tc.probe(0x2000) is None


def test_flush():
    tc = make_tc()
    tc.insert(make_segment(0x1000), now=0)
    tc.flush()
    assert tc.resident_segments() == 0
