"""Scaled-add pass tests (paper §4.4)."""

from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.opcodes import Op
from tests.helpers import build_segments

SCALED = OptimizationConfig.only("scaled_adds")


def segment_for(source, opts=SCALED, **kw):
    _, _, segments = build_segments(source, opts, **kw)
    return segments[0]


def find(seg, op, rd=None):
    for instr in seg.instrs:
        if instr.op is op and (rd is None or instr.rd == rd):
            return instr
    raise AssertionError(f"{op} not found")


def test_shift_add_pair_collapsed():
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        add $t2, $t1, $s0
        halt
    """)
    add = find(seg, Op.ADD)
    assert add.scale is not None
    assert add.scale.src == 8 and add.scale.shamt == 2
    # the shift itself stays (no dead-code elimination)
    assert seg.instrs[0].op is Op.SLL


def test_indexed_load_collapsed():
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        lwx $t2, $t1, $s0
        halt
    """)
    assert find(seg, Op.LWX).scale is not None


def test_displacement_load_and_store_collapsed():
    seg = segment_for("""
    main:
        sll $t1, $t0, 3
        lw  $t2, 4($t1)
        sll $t3, $t0, 2
        sw  $t2, 0($t3)
        halt
    """)
    assert find(seg, Op.LW).scale.shamt == 3
    assert find(seg, Op.SW).scale.shamt == 2


def test_operands_swapped_when_shift_in_rt():
    """The fill unit may interchange source operands so the shifted
    value sits in the scaled slot (paper §4.4)."""
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        add $t2, $s0, $t1     # shift result in rt
        halt
    """)
    add = find(seg, Op.ADD)
    assert add.scale is not None
    assert add.rt == 16       # $s0 moved to the unscaled slot


def test_shift_longer_than_three_not_collapsed():
    """The 2-gate ALU path-length argument limits shifts to 3 bits."""
    seg = segment_for("""
    main:
        sll $t1, $t0, 4
        add $t2, $t1, $s0
        halt
    """)
    assert find(seg, Op.ADD).scale is None


def test_zero_shift_not_collapsed():
    seg = segment_for("""
    main:
        sll $t1, $t0, 0
        add $t2, $t1, $s0
        halt
    """)
    assert find(seg, Op.ADD).scale is None


def test_shift_source_redefined_invalidates():
    seg = segment_for("""
    main:
        sll  $t1, $t0, 2
        addi $t0, $t0, 1      # shift source changes
        add  $t2, $t1, $s0    # t1 != (new t0) << 2
        halt
    """)
    assert find(seg, Op.ADD).scale is None


def test_shift_result_redefined_invalidates():
    seg = segment_for("""
    main:
        sll  $t1, $t0, 2
        addi $t1, $t1, 4
        add  $t2, $t1, $s0
        halt
    """)
    assert find(seg, Op.ADD).scale is None


def test_self_shift_not_tracked():
    seg = segment_for("""
    main:
        sll $t0, $t0, 2       # rd == rs: source destroyed
        add $t2, $t0, $s0
        halt
    """)
    assert find(seg, Op.ADD).scale is None


def test_cross_block_pair_collapses():
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        beq $zero, $t9, next
    next:
        add $t2, $t1, $s0
        halt
    """)
    assert find(seg, Op.ADD).scale is not None


def test_two_consumers_both_scaled():
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        add $t2, $t1, $s0
        lwx $t3, $t1, $s1
        halt
    """)
    assert find(seg, Op.ADD).scale is not None
    assert find(seg, Op.LWX).scale is not None


def test_sub_never_scaled():
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        sub $t2, $t1, $s0
        halt
    """)
    assert find(seg, Op.SUB).scale is None


def test_indexed_store_value_slot_not_scaled():
    """Only address operands may be scaled; the store value cannot."""
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        swx $t1, $s0, $s1     # t1 is the VALUE, not an address
        halt
    """)
    swx = find(seg, Op.SWX)
    assert swx.scale is None
    assert swx.rd == 9


def test_indexed_store_address_scaled_via_swap():
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        swx $t5, $s0, $t1     # address operand rt is the shift result
        halt
    """)
    swx = find(seg, Op.SWX)
    assert swx.scale is not None
    assert swx.rt == 16       # $s0 swapped into the unscaled slot
    assert swx.rd == 13       # value untouched


def test_max_scale_shift_configurable():
    opts = OptimizationConfig(scaled_adds=True, max_scale_shift=1)
    seg = segment_for("""
    main:
        sll $t1, $t0, 2
        add $t2, $t1, $s0
        halt
    """, opts=opts)
    assert find(seg, Op.ADD).scale is None
