"""Property tests of the structural models against simple references:
the sparse memory against a plain dict, the set-associative cache
against a brute-force LRU list, and segment invariants over random
committed streams."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.bias import BiasTable
from repro.cache.setassoc import SetAssocCache
from repro.fillunit.collector import FillCollector
from repro.machine.memory import Memory


# --- memory vs dict reference ------------------------------------------------

mem_ops = st.lists(
    st.tuples(
        st.booleans(),                                      # is_store
        st.integers(min_value=0, max_value=1 << 20),        # word index
        st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
    ),
    min_size=1, max_size=200)


@given(mem_ops)
@settings(max_examples=200)
def test_memory_matches_dict_reference(ops):
    memory = Memory()
    reference: dict = {}
    for is_store, word, value in ops:
        addr = word * 4
        if is_store:
            memory.store_word(addr, value)
            reference[addr] = value & 0xFFFFFFFF
        else:
            loaded = memory.load(addr, 4, signed=False)
            assert loaded == reference.get(addr, 0)


@given(st.lists(st.tuples(st.integers(0, 1 << 16),
                          st.integers(-(2 ** 7), 2 ** 7 - 1)),
                min_size=1, max_size=100))
@settings(max_examples=100)
def test_memory_bytes_match_reference(ops):
    memory = Memory()
    reference: dict = {}
    for addr, value in ops:
        memory.store(addr, value, 1)
        reference[addr] = value & 0xFF
    for addr, expected in reference.items():
        assert memory.load(addr, 1, signed=False) == expected


# --- cache vs brute-force LRU --------------------------------------------------

class ReferenceLRU:
    """Brute-force fully-explicit LRU model of one cache."""

    def __init__(self, num_sets, assoc, line_shift):
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_shift = line_shift
        self.sets = [[] for _ in range(num_sets)]   # MRU at end

    def access(self, addr):
        line = addr >> self.line_shift
        entries = self.sets[line % self.num_sets]
        if line in entries:
            entries.remove(line)
            entries.append(line)
            return True
        if len(entries) >= self.assoc:
            entries.pop(0)
        entries.append(line)
        return False


@given(st.lists(st.integers(min_value=0, max_value=4095),
                min_size=1, max_size=400))
@settings(max_examples=150)
def test_cache_matches_reference_lru(addresses):
    cache = SetAssocCache(size_bytes=256, assoc=2, line_size=16)
    reference = ReferenceLRU(num_sets=8, assoc=2, line_shift=4)
    for addr in addresses:
        assert cache.access(addr) == reference.access(addr), addr


# --- bias table vs reference ---------------------------------------------------

@given(st.lists(st.booleans(), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=150)
def test_bias_promotion_matches_run_length_reference(outcomes, threshold):
    bias = BiasTable(64, threshold=threshold)
    run = 0
    last = None
    for outcome in outcomes:
        bias.record(0x1000, outcome)
        run = run + 1 if outcome == last else 1
        last = outcome
        assert bias.is_promoted(0x1000) == (run >= threshold)


# --- collector invariants over random streams -----------------------------------

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.machine.tracing import CommittedInstr


@st.composite
def committed_streams(draw):
    """A random committed stream with contiguous pcs and arbitrary
    branch/terminator mix."""
    length = draw(st.integers(min_value=1, max_value=120))
    records = []
    for idx in range(length):
        pc = 0x1000 + 4 * idx
        kind = draw(st.sampled_from(
            ["alu", "alu", "alu", "branch", "jump", "call", "ret",
             "syscall"]))
        if kind == "alu":
            instr = Instruction(Op.ADDI, rd=8, rs=9, imm=1, pc=pc)
        elif kind == "branch":
            instr = Instruction(Op.BNE, rs=0, rt=0, imm=8, pc=pc)
        elif kind == "jump":
            instr = Instruction(Op.J, imm=pc + 4, pc=pc)
        elif kind == "call":
            instr = Instruction(Op.JAL, imm=pc + 4, pc=pc)
        elif kind == "ret":
            instr = Instruction(Op.JR, rs=31, pc=pc)
        else:
            instr = Instruction(Op.SYSCALL, pc=pc)
        records.append(CommittedInstr(idx, pc, instr, pc + 4,
                                      taken=draw(st.booleans())
                                      if kind == "branch" else False))
    return records


@given(committed_streams(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_collector_segments_respect_invariants(records, packing):
    bias = BiasTable(64)
    collector = FillCollector(bias, max_instrs=16, max_cond_branches=3,
                              trace_packing=packing)
    segments = []
    for record in records:
        segments.extend(collector.add(record))
    segments.extend(collector.flush())
    # 1. conservation: every record in exactly one segment, in order
    flattened = [r for seg in segments for r in seg.records]
    assert [r.seq for r in flattened] == [r.seq for r in records]
    for seg in segments:
        # 2. structural limits
        assert 1 <= len(seg) <= 16
        assert sum(1 for b in seg.branches if not b.promoted) <= 3
        # 3. terminators only at the end
        for record in seg.records[:-1]:
            assert not record.instr.terminates_segment()
        # 4. block ids normalized, monotone
        assert seg.block_ids[0] == 0
        assert all(b2 - b1 in (0, 1)
                   for b1, b2 in zip(seg.block_ids, seg.block_ids[1:]))
        assert seg.block_count == seg.block_ids[-1] + 1
