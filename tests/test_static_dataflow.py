"""The iterative dataflow framework: reaching defs, liveness, chains."""

from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.dataflow import (
    ENTRY_DEF,
    Liveness,
    ReachingDefinitions,
    def_use_chains,
    instr_defs,
    instr_uses,
    solve,
)
from repro.asm import assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

T0, T1, A0, V0 = 8, 9, 4, 2

MERGE = """
main:
    li   $t0, 1
    beq  $t0, $zero, other
    addi $t1, $t0, 1
    j    join
other:
    addi $t1, $t0, 2
join:
    add  $a0, $t1, $zero
    li   $v0, 1
    syscall
    halt
"""


def _instr_value(cfg, result, pc):
    block = cfg.block_of(pc)
    offset = (pc - block.start) // 4
    return result.instr_values(block.index)[offset]


def test_reaching_defs_merge_at_join():
    cfg = build_cfg(assemble(MERGE))
    result = solve(cfg, ReachingDefinitions())
    join_pc = cfg.program.symbols["join"]
    reach = _instr_value(cfg, result, join_pc)
    # $t1 was defined in both arms: two defining PCs survive the join.
    defs = reach[T1]
    assert len(defs) == 2
    arm_ops = {cfg.program.instr_at(pc).op for pc in defs}
    assert arm_ops == {Op.ADDI}


def test_entry_registers_reach_the_first_instruction():
    cfg = build_cfg(assemble(MERGE))
    result = solve(cfg, ReachingDefinitions())
    entry_pc = cfg.blocks[cfg.entry].start
    reach = _instr_value(cfg, result, entry_pc)
    for reg in (0, 28, 29):      # $zero, $gp, $sp
        assert reach[reg] == frozenset({ENTRY_DEF})
    assert T0 not in reach       # nothing else is defined yet


def test_liveness_across_a_branch():
    cfg = build_cfg(assemble(MERGE))
    result = solve(cfg, Liveness())
    # After the first li, $t0 is live: both arms read it.
    first_pc = cfg.blocks[cfg.entry].start
    live_after = _instr_value(cfg, result, first_pc)
    assert (live_after >> T0) & 1
    # After the final add into $a0, $t0/$t1 are dead but $a0 is live
    # (the syscall reads it out of band).
    join_pc = cfg.program.symbols["join"]
    live_after_add = _instr_value(cfg, result, join_pc)
    assert (live_after_add >> A0) & 1
    assert not (live_after_add >> T1) & 1


def test_def_use_chains():
    cfg = build_cfg(assemble(MERGE))
    chains = def_use_chains(cfg, solve(cfg, ReachingDefinitions()))
    program = cfg.program
    # The li $t0 definition feeds the branch and both arms' addis.
    li_pc = program.symbols["main"]
    uses = {pc for pc, reg in chains[li_pc] if reg == T0}
    assert len(uses) == 3
    # The loader's pseudo-definition has uses too ($zero operands).
    assert any(reg == 0 for _, reg in chains[ENTRY_DEF])


def test_loop_reaches_itself():
    cfg = build_cfg(assemble("""
main:
    li   $t0, 3
loop:
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt
"""))
    result = solve(cfg, ReachingDefinitions())
    loop_pc = cfg.program.symbols["loop"]
    reach = _instr_value(cfg, result, loop_pc)
    # Around the back edge, the addi's own definition reaches its input
    # alongside the initial li.
    assert reach[T0] == frozenset({cfg.program.symbols["main"], loop_pc})


def test_instr_defs_and_uses():
    addi = Instruction(Op.ADDI, rd=T1, rs=T0, imm=4)
    assert instr_defs(addi) == (T1,)
    assert instr_uses(addi) == (T0,)
    # Writes to $zero are discarded, not definitions.
    assert instr_defs(Instruction(Op.ADDI, rd=0, rs=T0, imm=4)) == ()
    # Syscalls read their service/argument registers out of band.
    assert instr_uses(Instruction(Op.SYSCALL)) == (2, 4)


def test_backward_direction_instr_values_alignment():
    """For a backward analysis instr_values()[i] is the value *after*
    instruction i — the last instruction sees the boundary value."""
    cfg = build_cfg(assemble("main:\n    addi $t0, $zero, 1\n    halt\n"))
    result = solve(cfg, Liveness())
    values = result.instr_values(cfg.entry)
    assert len(values) == len(cfg.blocks[cfg.entry].instrs)
    assert values[-1] == 0       # nothing live after halt


def test_single_block_function_dataflow():
    # a whole function in one basic block: the call graph sees a
    # single-block extent and dataflow works without any internal edge.
    from repro.analysis.static.callgraph import build_call_graph

    cfg = build_cfg(assemble("""
main:
    jal  tiny
    li   $v0, 10
    syscall
    halt
tiny:
    addi $t0, $t0, 5
    jr   $ra
"""))
    graph = build_call_graph(cfg)
    tiny = cfg.program.symbols["tiny"]
    info = graph.functions[tiny]
    assert info.blocks == (cfg.block_of(tiny).index,)
    assert info.returns and not info.fall_off
    result = solve(cfg, ReachingDefinitions())
    jr_pc = tiny + 4
    reach = _instr_value(cfg, result, jr_pc)
    assert tiny in reach[T0]
