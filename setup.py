from setuptools import setup

# Offline-friendly shim: metadata lives in pyproject.toml; this file lets
# `pip install -e .` use the legacy editable path on hosts without the
# `wheel` package.
setup()
