"""Figure 4: IPC improvement from fill-unit reassociation.

The paper's sharpest per-benchmark contrast: most benchmarks gain only
1-2%, while m88ksim and gnuchess — saturated with cross-block
constant-offset chains — gain ~23%. The reproduction must show the same
bimodal shape: the chain-heavy trio (m88ksim, gnuchess, ghostscript)
far above everything else.
"""

import pytest

from repro.harness import figures


@pytest.mark.figure
def test_figure4_reassociation(benchmark, runner, emit):
    fig = benchmark.pedantic(figures.figure4, args=(runner,),
                             rounds=1, iterations=1)
    emit(fig.render())

    rows = fig.rows
    chain_heavy = {"m88ksim", "gnuchess", "ghostscript"}
    others = {name: value for name, value in rows.items()
              if name not in chain_heavy}
    # Shape claim 1: m88ksim is the top reassociation benchmark.
    assert rows["m88ksim"] == max(rows.values())
    assert rows["m88ksim"] > 5.0
    # Shape claim 2: the rest of the field sees little effect (the
    # compiler already reassociated within blocks).
    assert max(others.values()) < rows["m88ksim"]
    assert sum(others.values()) / len(others) < 3.0
    # Shape claim 3: nothing regresses meaningfully.
    assert all(value > -1.0 for value in rows.values())
