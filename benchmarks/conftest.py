"""Shared fixtures for the figure/table regeneration benchmarks.

One :class:`ExperimentRunner` is shared across the whole benchmark
session so the committed traces and per-configuration results are
computed once and reused by every figure.

Environment knobs:

* ``REPRO_BENCH_SCALE`` (default 0.6) multiplies workload lengths;
  1.0 reproduces the numbers quoted in EXPERIMENTS.md.
* ``REPRO_BENCH_JOBS`` (default 1) sizes the execution service's
  worker pool; the paper grid is prefetched through it up front.
* ``REPRO_BENCH_CACHE`` (unset by default) points the service at a
  content-addressed on-disk result cache shared between sessions.
"""

import os

import pytest

from repro.harness.experiment import ExperimentRunner


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: marks a paper figure/table regeneration")


@pytest.fixture(scope="session")
def runner():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
    runner = ExperimentRunner(scale=scale, jobs=jobs,
                              cache_dir=cache_dir)
    if jobs > 1 or cache_dir:
        from repro.exec.grid import paper_grid
        runner.prefetch(paper_grid(runner.benchmarks))
    return runner


@pytest.fixture(scope="session")
def emit():
    """Print a rendered figure/table under a visible banner."""
    def _emit(text: str) -> None:
        print("\n" + "=" * 72)
        print(text)
        print("=" * 72)
    return _emit
