"""Shared fixtures for the figure/table regeneration benchmarks.

One :class:`ExperimentRunner` is shared across the whole benchmark
session so the committed traces and per-configuration results are
computed once and reused by every figure.

Scale: ``REPRO_BENCH_SCALE`` (default 0.6) multiplies workload lengths;
1.0 reproduces the numbers quoted in EXPERIMENTS.md.
"""

import os

import pytest

from repro.harness.experiment import ExperimentRunner


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure: marks a paper figure/table regeneration")


@pytest.fixture(scope="session")
def runner():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
    return ExperimentRunner(scale=scale)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered figure/table under a visible banner."""
    def _emit(text: str) -> None:
        print("\n" + "=" * 72)
        print(text)
        print("=" * 72)
    return _emit
