"""Perf-trajectory regression guard over the checked-in BENCH_10.json.

Re-measures the anchor benchmarks with ``tools/bench_trajectory.py``
and holds the current build to the checked-in trajectory file:

* simulated cycle counts must match **exactly** (any drift is a
  modelling change and needs a deliberate baseline refresh);
* per-stage host-time shares must be a sane distribution;
* timing-memo replay counts (hits/misses/bypasses/invalidations and
  memo entries) must match exactly — the adaptive bypass policy is
  deterministic, so drift means the replay machinery changed;
* the normalized wall-time gate (>10% regression fails) runs only
  when ``REPRO_BENCH_GATE`` is set — CI sets it; local runs on busy
  machines skip the wall gate but still check determinism.

Run with ``pytest benchmarks/bench_trajectory.py -s`` or exercise the
same logic as a script via ``tools/bench_trajectory.py --check``.
"""

import importlib.util
import json
import os
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_10.json"

#: replay fields that are deterministic run to run (wall-derived
#: fields and the sampled byte estimate are excluded).
_REPLAY_EXACT = ("hits", "misses", "bypasses", "invalidations",
                 "memo_entries")

_spec = importlib.util.spec_from_file_location(
    "bench_trajectory_tool", REPO_ROOT / "tools" / "bench_trajectory.py")
_tool = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_tool)


def test_trajectory_against_baseline():
    baseline = json.loads(BASELINE.read_text())
    current = _tool.measure_all(scale=baseline["scale"], repeats=2)
    print("\n" + _tool.render(current))

    for name, base in baseline["benchmarks"].items():
        now = current["benchmarks"][name]
        assert now["cycles"] == base["cycles"], (
            f"{name}: cycles drifted {base['cycles']} -> "
            f"{now['cycles']}; simulated time must be deterministic "
            f"(refresh BENCH_10.json only for deliberate model changes)")
        assert now["instructions"] == base["instructions"]
        assert now["reuse"] == base["reuse"], (
            f"{name}: segment-reuse profile drifted: "
            f"{base['reuse']} -> {now['reuse']}")
        shares = now["stage_shares"]
        assert shares, f"{name}: no stage shares recorded"
        assert abs(sum(shares.values()) - 1.0) < 0.01
        assert set(shares) == set(base["stage_shares"]), (
            f"{name}: stage set changed")
        if "replay" in base:
            for field in _REPLAY_EXACT:
                assert now["replay"][field] == base["replay"][field], (
                    f"{name}: replay {field} drifted "
                    f"{base['replay'][field]} -> {now['replay'][field]}"
                    f" (bypass policy and keying are deterministic)")
            assert now["replay"]["hit_rate"] > 0, (
                f"{name}: timing memo never hit")
        if "policies" in base:
            for policy, leg in base["policies"].items():
                got = now["policies"][policy]
                assert got["cycles"] == leg["cycles"], (
                    f"{name}/{policy}: cycles drifted "
                    f"{leg['cycles']} -> {got['cycles']}")
                assert got == leg, (
                    f"{name}/{policy}: reuse profile drifted "
                    f"{leg} -> {got}")
            assert (now["policies"]["lru"]["cycles"]
                    == now["cycles"]), (
                f"{name}: lru leg diverged from the main run")

    if os.environ.get("REPRO_BENCH_GATE"):
        failures = _tool.check_against(current, baseline)
        assert not failures, "\n".join(failures)


if __name__ == "__main__":
    test_trajectory_against_baseline()
    print("trajectory guard passed")
