"""Figure 8: combined IPC improvement of all four optimizations, at
fill-unit latencies of 1, 5 and 10 cycles.

The paper's headline results:

* "more than 17%" average improvement on SPECint95;
* "slightly more than 18%" across all benchmarks studied;
* m88ksim (~44%) and gnuchess (~38%) far ahead;
* fill-unit latency has a negligible impact.
"""

import pytest

from repro.analysis.stats import arithmetic_mean
from repro.harness import figures


@pytest.mark.figure
def test_figure8_combined(benchmark, runner, emit):
    fig = benchmark.pedantic(figures.figure8, args=(runner,),
                             rounds=1, iterations=1)
    emit(fig.render())
    emit(f"all-benchmark mean (5-cycle fill): {fig.mean:.1f}%   "
         f"SPECint95 mean: {fig.extra['specint_mean']:.1f}%")

    latencies = fig.extra["latencies"]
    five = latencies.index(5)
    headline = {name: values[five] for name, values in fig.rows.items()}

    # Shape claim 1: double-digit average improvement, like the paper's
    # 18% (we do not chase the absolute number, but it must be material).
    assert fig.mean > 8.0
    assert fig.extra["specint_mean"] > 8.0
    # Shape claim 2: every benchmark improves.
    assert all(value > 0 for value in headline.values())
    # Shape claim 3: m88ksim and gnuchess are the two biggest winners.
    ranked = sorted(headline, key=headline.get, reverse=True)
    assert {"m88ksim", "gnuchess"} & set(ranked[:4])
    # Shape claim 4: combined beats the single-optimization runs.
    fig3 = figures.figure3(runner)
    assert fig.mean > fig3.mean
    # Shape claim 5: fill latency 1 vs 10 cycles changes each
    # benchmark's improvement only marginally (paper: "negligible");
    # small hot loops are the most latency-sensitive, so allow a
    # slightly wider per-benchmark band than the mean.
    for name, values in fig.rows.items():
        spread = max(values) - min(values)
        assert spread < 8.0, (name, values)
    mean_1 = arithmetic_mean(v[0] for v in fig.rows.values())
    mean_10 = arithmetic_mean(v[-1] for v in fig.rows.values())
    assert abs(mean_1 - mean_10) < 2.5
