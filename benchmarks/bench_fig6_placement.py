"""Figure 6: IPC improvement from fill-unit instruction placement.

Paper: ~5% average; ijpeg (parallel accumulator chains) the largest at
~11%, tex the smallest at ~1%. The reproduction checks the same shape:
a positive mean, the chain-parallel codes (ijpeg, gnuplot) near the
top, tex near the bottom.
"""

import pytest

from repro.harness import figures


@pytest.mark.figure
def test_figure6_placement(benchmark, runner, emit):
    fig = benchmark.pedantic(figures.figure6, args=(runner,),
                             rounds=1, iterations=1)
    emit(fig.render())

    rows = fig.rows
    # Shape claim 1: positive on average.
    assert 1.0 < fig.mean < 12.0
    # Shape claim 2: the chain-parallel codes benefit most.
    top_pair = max(rows["ijpeg"], rows["gnuplot"])
    assert top_pair >= max(rows.values()) * 0.5
    # Shape claim 3: tex gains little (its loops are single-chain).
    assert rows["tex"] < fig.mean
