"""Ablation studies beyond the paper's figures, for the design choices
DESIGN.md calls out:

* the trace cache substrate (measured with placement enabled: wide
  16-instruction fetch groups *without* placement scatter dependence
  chains across clusters, which can cancel the bandwidth win on
  latency-bound codes — the very pathology the placement pass exists
  to fix; see the emitted table);
* trace packing (paper baseline feature, from Patel et al.);
* the paper's inhibition of same-block reassociation (§4.3 reports that
  lifting it gains nothing because the compiler already did the work —
  our kernels emulate the compiled-code property, so lifting it should
  likewise gain little);
* cross-cluster bypass penalty sensitivity (the placement pass's reason
  to exist).
"""

from dataclasses import replace

import pytest

from repro.analysis.stats import arithmetic_mean
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig

SUBSET = ["m88ksim", "go", "li", "ijpeg"]
PLACE = OptimizationConfig.only("placement")
ALL = OptimizationConfig.all()


def run_config(runner, bench, config, label):
    model = PipelineModel(config)
    return model.run(runner.trace(bench), benchmark=bench, label=label)


@pytest.mark.figure
def test_ablation_trace_cache_value(benchmark, runner, emit):
    """Value of the whole trace-cache substrate: the optimized TC
    machine versus instruction-cache-only fetch. Also reports the
    *unplaced* TC baseline, which can trail IC fetch on latency-bound
    codes because wide fetch groups scatter chains across clusters."""
    def study():
        rows = {}
        for bench in SUBSET:
            no_tc = run_config(
                runner, bench,
                replace(SimConfig.paper(), trace_cache_enabled=False),
                "no-tc")
            tc_base = runner.baseline(bench)
            tc_placed = runner.run(bench, PLACE)
            tc_full = runner.run(bench, ALL)
            rows[bench] = (
                100.0 * (tc_base.ipc - no_tc.ipc) / no_tc.ipc,
                100.0 * (tc_placed.ipc - no_tc.ipc) / no_tc.ipc,
                100.0 * (tc_full.ipc - no_tc.ipc) / no_tc.ipc)
        return rows
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    emit("Ablation: trace cache value over IC-only fetch\n"
         + "\n".join(f"  {name:10s} unplaced {a:+6.1f}%   "
                     f"placed {b:+6.1f}%   all opts {c:+6.1f}%"
                     for name, (a, b, c) in rows.items())
         + "\n(latency-bound pointer chasers like li can LOSE from the"
         "\n bare trace cache: 16-wide groups scatter their chains"
         "\n across clusters; the fill-unit optimizations win it back)")
    # The bare substrate wins on the fetch-bound majority (the
    # latency-bound pointer chaser may lose; see the emitted note) ...
    unplaced = [a for a, _, _ in rows.values()]
    assert sum(1 for a in unplaced if a > 0) >= len(unplaced) - 1
    # ... placement narrows any per-benchmark loss ...
    assert all(b >= a - 0.5 for a, b, _ in rows.values())
    # ... and the fully-optimizing fill unit wins everywhere.
    assert all(c > 0 for _, _, c in rows.values())
    assert arithmetic_mean(c for _, _, c in rows.values()) > 10.0


@pytest.mark.figure
def test_ablation_trace_packing(benchmark, runner, emit):
    """Trace packing raises segment occupancy (more instructions per
    TC line). Compared under the combined optimizations, as the
    paper's baseline runs both packing and (in our case) placement,
    which compensates packing's wider slot spread."""
    def study():
        rows = {}
        for bench in SUBSET:
            packed = runner.run(bench, ALL)
            unpacked = run_config(
                runner, bench,
                replace(SimConfig.paper(ALL), trace_packing=False),
                "no-packing")
            rows[bench] = (packed.ipc, unpacked.ipc,
                           packed.tc_instr_fraction,
                           unpacked.tc_instr_fraction)
        return rows
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    emit("Ablation: trace packing vs block-granular fill "
         "(combined opts)\n"
         + "\n".join(f"  {name:10s} packed {p:5.2f} (tc {tp:.0%})  "
                     f"unpacked {u:5.2f} (tc {tu:.0%})"
                     for name, (p, u, tp, tu) in rows.items()))
    packed_mean = arithmetic_mean(p for p, _, _, _ in rows.values())
    unpacked_mean = arithmetic_mean(u for _, u, _, _ in rows.values())
    # Packing must not cost performance once placement handles the
    # slot spread; occupancy/coverage should not collapse either way.
    assert packed_mean >= 0.9 * unpacked_mean
    assert all(tp > 0.5 for _, _, tp, _ in rows.values())


@pytest.mark.figure
def test_ablation_same_block_reassociation(benchmark, runner, emit):
    """Paper §4.3: lifting the cross-block-only restriction showed "no
    significant performance increase" because the compiler already
    reassociates within blocks. Our kernels are written pre-reassociated
    within blocks, so the same null result should hold."""
    restricted = OptimizationConfig.only("reassoc")
    unrestricted = OptimizationConfig(reassoc=True,
                                      reassoc_cross_flow_only=False)

    def study():
        rows = {}
        for bench in SUBSET:
            base = runner.baseline(bench)
            cross = runner.run(bench, restricted)
            full = run_config(
                runner, bench, SimConfig.paper(unrestricted), "reassoc-all")
            rows[bench] = (cross.improvement_over(base),
                           full.improvement_over(base))
        return rows
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    emit("Ablation: reassociation cross-block-only vs unrestricted\n"
         + "\n".join(f"  {name:10s} cross-only {c:+5.1f}%  "
                     f"unrestricted {f:+5.1f}%"
                     for name, (c, f) in rows.items()))
    deltas = [f - c for c, f in rows.values()]
    assert abs(arithmetic_mean(deltas)) < 3.0


@pytest.mark.figure
def test_ablation_bypass_penalty_sensitivity(benchmark, runner, emit):
    """With a free bypass network (penalty 0) placement loses most of
    its reason to exist; with the paper's 1-cycle penalty it pays.
    (A small residue remains even at penalty 0 from functional-unit
    load balancing — placement also spreads slot pressure.)"""
    def study():
        rows = {}
        for bench in ("ijpeg", "gnuplot"):
            base1 = runner.baseline(bench)
            place1 = runner.run(bench, PLACE)
            gain_with_penalty = place1.improvement_over(base1)
            cfg0 = replace(SimConfig.paper(), cross_cluster_penalty=0)
            base0 = run_config(runner, bench, cfg0, "free-bypass")
            place0 = run_config(
                runner, bench, cfg0.with_optimizations(PLACE),
                "free-bypass+placement")
            gain_free = place0.improvement_over(base0)
            rows[bench] = (gain_with_penalty, gain_free)
        return rows
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    emit("Ablation: placement gain vs bypass penalty\n"
         + "\n".join(f"  {name:10s} penalty=1 {p1:+5.1f}%  "
                     f"penalty=0 {p0:+5.1f}%"
                     for name, (p1, p0) in rows.items()))
    for name, (with_penalty, free) in rows.items():
        assert with_penalty > free - 0.5, name
        assert abs(free) < 4.0, name
    # Aggregate: the penalty is what placement monetizes.
    assert (arithmetic_mean(p1 for p1, _ in rows.values())
            > arithmetic_mean(p0 for _, p0 in rows.values()) + 1.0)


@pytest.mark.figure
def test_ablation_wrong_path_pollution(benchmark, runner, emit):
    """Opt-in wrong-path fetch pollution (repro.core.wrongpath): the
    replay methodology's documented gap, measured. On this machine the
    trace cache covers ~99% of fetch, so I-side pollution is a
    second-order effect — quantifying that is the point."""
    from repro import workloads

    def study():
        rows = {}
        for bench in ("compress", "perl"):      # the mispredict-heavy pair
            program = workloads.build(bench, runner.scale)
            trace = runner.trace(bench)
            plain = runner.baseline(bench)
            cfg = replace(SimConfig.paper(), model_wrong_path=True)
            polluted = PipelineModel(cfg).run(trace, bench, "wrong-path",
                                              program=program)
            rows[bench] = (plain.ipc, polluted.ipc,
                           polluted.wrong_path_fetches)
        return rows
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    emit("Ablation: wrong-path fetch pollution (opt-in)\n"
         + "\n".join(f"  {name:10s} plain {p:5.2f}  polluted {q:5.2f}  "
                     f"({n} wrong-path instrs fetched)"
                     for name, (p, q, n) in rows.items()))
    for name, (plain, polluted, fetched) in rows.items():
        assert fetched > 0, name
        # second-order: within a few percent either way
        assert abs(polluted - plain) / plain < 0.08, name
