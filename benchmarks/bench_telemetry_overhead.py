"""Telemetry overhead guard.

The telemetry design promises *near-zero overhead when disabled*: a
run with a ``Telemetry(enabled=False)`` session (or no session at all)
must go through the null-object fast path — no event construction, no
accountant, no sink fan-out. This benchmark holds that promise to a
number: the disabled-session replay loop must be within 3% of the
no-session replay loop. A regression here means someone made a
disabled-mode code path do real work.

The fully-enabled cost (events + cycle accounting) is also measured
and reported, but only sanity-bounded — profiling is allowed to cost
something.

Run with ``pytest benchmarks/bench_telemetry_overhead.py -s`` or
directly as a script.
"""

import time

from repro import workloads
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.machine.executor import Executor
from repro.telemetry import Telemetry

SCALE = 0.3
REPEATS = 7


def _trace():
    program = workloads.build("compress", SCALE)
    return Executor(program).run()


def _one_replay(trace, telemetry) -> float:
    """Wall time of one replay (model construction excluded; the trace
    is shared)."""
    model = PipelineModel(SimConfig.paper(), telemetry=telemetry)
    start = time.perf_counter()
    model.run(trace, "compress", "bench")
    return time.perf_counter() - start


def measure() -> dict:
    trace = _trace()
    # Warm-up: the first replays pay import and allocator noise.
    _one_replay(trace, None)
    _one_replay(trace, Telemetry())
    # Interleave the configurations so clock-frequency drift hits all
    # of them equally; compare best-of-N.
    t_none = t_disabled = t_enabled = None
    for _ in range(REPEATS):
        sample = _one_replay(trace, None)
        if t_none is None or sample < t_none:
            t_none = sample
        sample = _one_replay(trace, Telemetry(enabled=False))
        if t_disabled is None or sample < t_disabled:
            t_disabled = sample
        enabled = Telemetry()
        enabled.attach_memory()
        sample = _one_replay(trace, enabled)
        if t_enabled is None or sample < t_enabled:
            t_enabled = sample
    return {
        "no_session": t_none,
        "disabled_session": t_disabled,
        "enabled_session": t_enabled,
        "disabled_overhead_pct":
            100.0 * (t_disabled / t_none - 1.0) if t_none else 0.0,
        "enabled_overhead_pct":
            100.0 * (t_enabled / t_none - 1.0) if t_none else 0.0,
    }


def test_disabled_telemetry_overhead(capsys=None):
    stats = measure()
    report = (
        f"replay best-of-{REPEATS}: "
        f"no session {1000 * stats['no_session']:.1f} ms, "
        f"disabled session {1000 * stats['disabled_session']:.1f} ms "
        f"({stats['disabled_overhead_pct']:+.1f}%), "
        f"enabled session {1000 * stats['enabled_session']:.1f} ms "
        f"({stats['enabled_overhead_pct']:+.1f}%)")
    print("\n" + report)
    # The guard: a disabled session must ride the null-object fast path.
    assert stats["disabled_overhead_pct"] < 3.0, report
    # Sanity bound on the profiling cost (events + accountant); this is
    # deliberately loose — it exists to catch runaway per-instruction
    # work, not to tune.
    assert stats["enabled_overhead_pct"] < 75.0, report


if __name__ == "__main__":
    test_disabled_telemetry_overhead()
    print("telemetry overhead guard passed")
