"""Online-verification overhead guard.

The segment verifier is an opt-in safety net: with ``verify_fill``
off (the default) the fill unit must not pay anything — no snapshot
clone, no symbolic evaluation, no report bookkeeping. With it on, the
cost rides the fill pipeline, which sits behind retirement and off the
critical path, but the wall-clock price of the *simulation* still has
to stay reasonable or nobody will leave it enabled: the acceptance bar
is under 10% over the unverified replay.

Run with ``pytest benchmarks/bench_verify_overhead.py -s`` or directly
as a script.
"""

import gc
import time
from dataclasses import replace

from repro import workloads
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.machine.executor import Executor

SCALE = 0.3
REPEATS = 9


def _trace():
    program = workloads.build("compress", SCALE)
    return Executor(program).run()


def _one_replay(trace, config) -> float:
    """Wall time of one replay (model construction excluded; the trace
    is shared). A GC sweep beforehand keeps collection pauses out of
    the timed region."""
    model = PipelineModel(config)
    gc.collect()
    start = time.perf_counter()
    model.run(trace, "compress", "bench")
    return time.perf_counter() - start


def measure() -> dict:
    trace = _trace()
    base_config = SimConfig.paper()
    off_config = replace(base_config, verify_fill=False)
    on_config = replace(base_config, verify_fill=True)
    # Warm-up: the first replays pay import and allocator noise.
    _one_replay(trace, base_config)
    _one_replay(trace, on_config)
    # Interleave the configurations — rotating who goes first each
    # round — so clock-frequency drift and allocator aging hit all of
    # them equally; compare best-of-N.
    best = {"base": None, "off": None, "on": None}
    configs = [("base", base_config), ("off", off_config),
               ("on", on_config)]
    for i in range(REPEATS):
        for key, config in configs[i % 3:] + configs[:i % 3]:
            sample = _one_replay(trace, config)
            if best[key] is None or sample < best[key]:
                best[key] = sample
    t_base, t_off, t_on = best["base"], best["off"], best["on"]
    return {
        "baseline": t_base,
        "verify_off": t_off,
        "verify_on": t_on,
        "off_overhead_pct":
            100.0 * (t_off / t_base - 1.0) if t_base else 0.0,
        "on_overhead_pct":
            100.0 * (t_on / t_base - 1.0) if t_base else 0.0,
    }


def test_verify_overhead(capsys=None):
    stats = measure()
    report = (
        f"replay best-of-{REPEATS}: "
        f"baseline {1000 * stats['baseline']:.1f} ms, "
        f"verify off {1000 * stats['verify_off']:.1f} ms "
        f"({stats['off_overhead_pct']:+.1f}%), "
        f"verify on {1000 * stats['verify_on']:.1f} ms "
        f"({stats['on_overhead_pct']:+.1f}%)")
    print("\n" + report)
    # The guard: with verification off, build_segment must skip the
    # snapshot clone and the checker entirely — the flag check is the
    # whole cost. 3% is measurement noise, not a budget.
    assert stats["off_overhead_pct"] < 3.0, report
    # The acceptance bar for leaving verification on during runs.
    assert stats["on_overhead_pct"] < 10.0, report


if __name__ == "__main__":
    test_verify_overhead()
    print("verify overhead guard passed")
