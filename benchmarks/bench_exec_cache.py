"""Execution-service cache benchmark.

Runs the figure 3 + figure 8 job grid twice through the execution
service against one cache directory: a cold pass (empty cache, every
job simulated — through the worker pool when ``REPRO_BENCH_JOBS`` > 1)
and a warm pass (a fresh service on the same directory, every job
replayed from disk). Asserts the warm pass returns bit-identical
results at least twice as fast — the contract that makes repeated
figure regeneration cheap.

Run with ``pytest benchmarks/bench_exec_cache.py -s``.
"""

import os
import time

import pytest

from repro.exec import ExecutionService, expand, opt_variant
from repro.fillunit.opts.base import OptimizationConfig

SCALE = 0.25
BENCHMARKS = ("compress", "li")


def _fig3_fig8_grid():
    """The jobs behind figures 3 and 8: baseline and the combined set
    at each fill latency, plus the moves-only machine."""
    variants = []
    for latency in (1, 5, 10):
        label, config = opt_variant(OptimizationConfig.none(), latency)
        variants.append((f"{label}@{latency}", config))
        label, config = opt_variant(OptimizationConfig.all(), latency)
        variants.append((f"{label}@{latency}", config))
    variants.append(opt_variant(OptimizationConfig.only("moves")))
    return expand(BENCHMARKS, variants)


@pytest.mark.figure
def test_exec_cache_speedup(tmp_path, emit):
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "2"))
    cache_dir = tmp_path / "results"
    grid = _fig3_fig8_grid()

    cold_service = ExecutionService(scale=SCALE, jobs=jobs,
                                    cache_dir=cache_dir)
    t0 = time.perf_counter()
    cold = cold_service.run_many(grid)
    t_cold = time.perf_counter() - t0
    assert cold_service.stats["simulated"] == len(grid)

    warm_service = ExecutionService(scale=SCALE, jobs=jobs,
                                    cache_dir=cache_dir)
    t0 = time.perf_counter()
    warm = warm_service.run_many(grid)
    t_warm = time.perf_counter() - t0

    emit(f"exec cache: {len(grid)} jobs, pool={jobs}\n"
         f"cold {t_cold:.2f}s (all simulated) -> "
         f"warm {t_warm:.2f}s (all replayed); "
         f"speedup {t_cold / t_warm:.1f}x")

    # Every warm job came off disk, none simulated.
    assert warm_service.stats["simulated"] == 0
    assert warm_service.stats["disk"] == len(grid)
    # Replay is bit-identical: cycles and the full counter snapshot.
    for a, b in zip(cold, warm):
        assert a.cycles == b.cycles
        assert a.telemetry == b.telemetry
        assert a.config_label == b.config_label
    # The cached pass must be at least 2x faster than simulating.
    assert t_cold >= 2.0 * t_warm, (
        f"warm cache pass only {t_cold / t_warm:.1f}x faster")
