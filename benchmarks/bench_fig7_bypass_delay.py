"""Figure 7: fraction of on-path instructions whose last-arriving
source value was delayed by the operand bypass network.

Paper: the placement heuristic reduces the average from ~35% to ~29% —
a reduction, not an elimination. The reproduction checks that placement
lowers the aggregate fraction and never raises it dramatically on any
single benchmark.
"""

import pytest

from repro.harness import figures


@pytest.mark.figure
def test_figure7_bypass_delay(benchmark, runner, emit):
    fig = benchmark.pedantic(figures.figure7, args=(runner,),
                             rounds=1, iterations=1)
    emit(fig.render())
    emit(f"mean baseline {fig.extra['mean_baseline']:.1f}%  ->  "
         f"mean with placement {fig.extra['mean_placement']:.1f}%")

    # Shape claim 1: a meaningful aggregate reduction.
    assert fig.extra["mean_placement"] < fig.extra["mean_baseline"] - 1.0
    # Shape claim 2: baseline fractions are in a plausible band (the
    # paper sees ~35% on a 4-cluster machine).
    assert 10.0 < fig.extra["mean_baseline"] < 70.0
    # Shape claim 3: placement helps most benchmarks (heuristics may
    # tie or slightly lose on a couple, as real heuristics do).
    improved = sum(1 for base, placed in fig.rows.values()
                   if placed <= base + 0.5)
    assert improved >= len(fig.rows) * 2 // 3
