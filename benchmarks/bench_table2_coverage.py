"""Table 2: percentage of committed instructions transformed by the
fill unit, per optimization.

Paper: "slightly more than 13% of the instructions had some form of
transformation applied"; m88ksim and gnuchess above 20%; moves around
6% of the dynamic stream on average.
"""

import pytest

from repro.harness import tables


@pytest.mark.figure
def test_table2_coverage(benchmark, runner, emit):
    table = benchmark.pedantic(tables.table2, args=(runner,),
                               rounds=1, iterations=1)
    emit(table.render())

    data = {row[0]: {"moves": row[1], "reassoc": row[3],
                     "scaled": row[5], "total": row[7]}
            for row in table.rows[:-1]}
    average = table.rows[-1]

    # Shape claim 1: the all-benchmark transformed fraction is in the
    # paper's low-teens band.
    assert 7.0 < average[7] < 20.0
    # Shape claim 2: m88ksim and gnuchess lead total coverage.
    totals = {name: row["total"] for name, row in data.items()}
    ranked = sorted(totals, key=totals.get, reverse=True)
    assert set(ranked[:2]) == {"m88ksim", "gnuchess"}
    # Shape claim 3: per-category leaders match the paper's Table 2.
    assert data["m88ksim"]["reassoc"] == max(
        row["reassoc"] for row in data.values())
    scaled_leader = max(data, key=lambda n: data[n]["scaled"])
    assert scaled_leader in {"go", "tex"}
    # Shape claim 4: every benchmark has a nonzero transformed share.
    assert all(row["total"] > 1.0 for row in data.values())
