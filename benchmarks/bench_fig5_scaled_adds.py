"""Figure 5: IPC improvement from scaled-add creation.

Paper: improvements of 1-8% averaging 3.7%, with go and tex — whose
hot loops index arrays from loaded values — at the top.
"""

import pytest

from repro.analysis.stats import arithmetic_mean
from repro.harness import figures


@pytest.mark.figure
def test_figure5_scaled_adds(benchmark, runner, emit):
    fig = benchmark.pedantic(figures.figure5, args=(runner,),
                             rounds=1, iterations=1)
    emit(fig.render())

    rows = fig.rows
    # Shape claim 1: a modest positive mean in the paper's band.
    assert 1.0 < fig.mean < 10.0
    # Shape claim 2: go and tex lead the pack (array-index chains are
    # on their loop recurrences).
    index_heavy = arithmetic_mean([rows["go"], rows["tex"]])
    pointer_codes = arithmetic_mean([rows["li"], rows["vortex"],
                                     rows["m88ksim"], rows["pgp"]])
    assert index_heavy > pointer_codes + 2.0
    # Shape claim 3: nothing regresses meaningfully.
    assert all(value > -1.5 for value in rows.values())
