"""Extension passes beyond the paper's four measured optimizations:

* common-subexpression elimination and dead-code elimination (§5's
  proposed future work, in always-safe conservative subsets);
* dynamic predication of hard-to-predict short forward branches (the
  transformation class §1 names as an example of what the fill unit
  can do).

Measured on top of the paper's four optimizations.

The paper only *proposes* these ("may yield further improvements"), so
there is no reference number; the bench documents what the conservative
always-safe subsets buy on this suite and asserts they never regress.
"""

import pytest

from repro.analysis.stats import arithmetic_mean
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig

SUBSET = ["compress", "m88ksim", "li", "gnuplot", "python"]


@pytest.mark.figure
def test_extension_passes(benchmark, runner, emit):
    extended = OptimizationConfig.extended()

    def study():
        rows = {}
        for bench in SUBSET:
            base = runner.baseline(bench)
            four = runner.run(bench, OptimizationConfig.all())
            six = PipelineModel(SimConfig.paper(extended)).run(
                runner.trace(bench), benchmark=bench, label="extended")
            rows[bench] = (four.improvement_over(base),
                           six.improvement_over(base),
                           six.pass_totals.get("cse_eliminated", 0),
                           six.pass_totals.get("dead_code_removed", 0),
                           six.pass_totals.get("predicated_branches", 0))
        return rows
    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    emit("Extensions: the paper's four passes vs + predication/CSE/DCE\n"
         + "\n".join(
             f"  {name:10s} four {a:+6.1f}%   extended {b:+6.1f}%   "
             f"(cse x{c}, dce x{d}, pred x{e} per build)"
             for name, (a, b, c, d, e) in rows.items()))
    # Safety claim: adding the conservative extensions never loses
    # meaningfully (their rewrites strictly reduce work or convert
    # mispredict-prone control into data dependences).
    for name, (four, ext, _, _, _) in rows.items():
        assert ext >= four - 1.0, name
    # Predication should pay off visibly on the hammock-rich hash codes.
    mean_delta = arithmetic_mean(b - a for a, b, _, _, _ in rows.values())
    assert 0.0 <= mean_delta < 15.0
