"""Table 1: the benchmark inventory.

Regenerates the paper's benchmark table, pairing the original entries
(simulated instruction counts, input sets) with this reproduction's
synthetic stand-ins and their committed lengths.
"""

import pytest

from repro.harness import tables


@pytest.mark.figure
def test_table1_benchmarks(benchmark, runner, emit):
    table = benchmark.pedantic(tables.table1, args=(runner,),
                               rounds=1, iterations=1)
    emit(table.render())
    # All fifteen benchmarks present, every one with a nonempty trace.
    assert len(table.rows) == 15
    committed = {row[0]: row[4] for row in table.rows}
    assert all(count > 5000 for count in committed.values()), committed
    # SPECint95 and UNIX suites both represented, as in the paper.
    suites = {row[1] for row in table.rows}
    assert suites == {"SPECint95", "UNIX"}
