"""Figure 3: IPC improvement from register-move marking.

Paper claims reproduced in shape: a positive improvement on essentially
every benchmark, averaging around 5%, with the pointer-chasing and
call-glue codes (li, vortex, gnuplot, m88ksim) at the top and the
array codes (go, tex, ijpeg) at the bottom.
"""

import pytest

from repro.analysis.stats import arithmetic_mean
from repro.harness import figures


@pytest.mark.figure
def test_figure3_register_moves(benchmark, runner, emit):
    fig = benchmark.pedantic(figures.figure3, args=(runner,),
                             rounds=1, iterations=1)
    emit(fig.render())

    rows = fig.rows
    # Shape claim 1: positive on average, in the mid-single-digits band.
    assert 2.0 < fig.mean < 15.0
    # Shape claim 2: no benchmark regresses meaningfully.
    assert all(value > -1.0 for value in rows.values())
    # Shape claim 3: move-rich codes beat move-poor codes.
    move_rich = arithmetic_mean([rows["li"], rows["vortex"],
                                 rows["gnuplot"]])
    move_poor = arithmetic_mean([rows["go"], rows["tex"], rows["ijpeg"]])
    assert move_rich > 2 * move_poor
